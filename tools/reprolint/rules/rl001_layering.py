"""RL001 — import layering and the batch-recomposition seam.

The layered package stack (``isa``/``sim``/``fixedpoint``/``snn`` <
``runtime`` < ``csp`` < ``serve``) keeps the bit-exactness contracts
auditable: a lower layer never executes higher-layer code at import
time.  Two kinds of edge are special:

* **Adapters** (``harness``, ``sudoku``, ``codegen``, ``hw``,
  ``quickstart``) sit outside the stack.  They may import any layer;
  layered code may reach *into* an adapter only through a deferred
  (function-scope) import — the workload-registration seams in
  ``runtime/backends.py``/``workloads.py`` are the sanctioned examples.
* **Upward edges** inside the stack are legal only when deferred, for
  the same reason: importing the lower layer must never pull the higher
  one in.  Promoting one of these lazy imports to module scope is the
  classic "cleanup" regression this rule exists to catch.

The rule also absorbs the retired ``tools/check_layering.py``: direct
``BatchedNetwork.retain``/``.extend`` calls outside ``repro.runtime``
re-open the recomposition-ordering drift PR 7 closed —
``SlotEngine.recompose`` is the single owner of that seam.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from ..config import ReprolintConfig
from ..engine import SourceFile, Violation, dotted_name
from . import register

_BATCH_RECEIVER_RE = re.compile(r"batch", re.IGNORECASE)


@register
class LayeringRule:
    rule_id = "RL001"
    name = "layering"
    description = (
        "module-scope imports must point down the layer stack; batch "
        "recomposition stays inside repro.runtime"
    )

    # ------------------------------------------------------------------ #
    def check(self, source: SourceFile, config: ReprolintConfig) -> List[Violation]:
        cfg = config.rl001
        prefix = cfg.package_root.rstrip("/") + "/"
        if source.tree is None or not source.rel.startswith(prefix):
            return []
        rel_in_pkg = source.rel[len(prefix) :]
        parts = rel_in_pkg.split("/")
        source_pkg = parts[0][:-3] if len(parts) == 1 else parts[0]
        if source_pkg == "__init__":
            # The top-level package facade re-exports freely.
            return []
        violations: List[Violation] = []
        if source_pkg not in cfg.adapters:
            violations.extend(self._check_imports(source, config, source_pkg, parts))
        if not source.rel.startswith(cfg.seam_owner.rstrip("/") + "/"):
            violations.extend(self._check_seam(source, config))
        return violations

    # ------------------------------------------------------------------ #
    def _check_imports(
        self,
        source: SourceFile,
        config: ReprolintConfig,
        source_pkg: str,
        parts: List[str],
    ) -> List[Violation]:
        cfg = config.rl001
        source_level = cfg.layers.get(source_pkg)
        if source_level is None:
            return []
        # Module path (for resolving relative imports): repro.<pkg>....
        module_parts = ["repro"] + parts
        module_parts[-1] = module_parts[-1][:-3]
        if module_parts[-1] == "__init__":
            module_parts.pop()
            package_parts = module_parts
        else:
            package_parts = module_parts[:-1]

        violations: List[Violation] = []
        for node, deferred in _walk_imports(source.tree):
            for target in _import_targets(node, package_parts):
                if target == source_pkg:
                    continue
                if target in cfg.adapters:
                    if not deferred:
                        violations.append(
                            Violation(
                                self.rule_id,
                                source.rel,
                                node.lineno,
                                node.col_offset,
                                f"module-scope import of adapter package "
                                f"'repro.{target}' from layered package "
                                f"'repro.{source_pkg}' — adapters may only be "
                                "imported lazily (function scope)",
                            )
                        )
                    continue
                target_level = cfg.layers.get(target)
                if target_level is None or target_level <= source_level:
                    continue
                if not deferred:
                    violations.append(
                        Violation(
                            self.rule_id,
                            source.rel,
                            node.lineno,
                            node.col_offset,
                            f"upward import: 'repro.{source_pkg}' (layer "
                            f"{source_level}) imports 'repro.{target}' (layer "
                            f"{target_level}) at module scope — defer it to "
                            "function scope or invert the dependency",
                        )
                    )
        return violations

    # ------------------------------------------------------------------ #
    def _check_seam(self, source: SourceFile, config: ReprolintConfig) -> List[Violation]:
        cfg = config.rl001
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            if method not in cfg.seam_methods:
                continue
            receiver = dotted_name(node.func.value)
            if method == "extend" and not _BATCH_RECEIVER_RE.search(receiver):
                continue
            violations.append(
                Violation(
                    self.rule_id,
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    f"{receiver or '<expr>'}.{method}(...) — batch recomposition "
                    "is owned by repro.runtime.slots.SlotEngine.recompose",
                )
            )
        return violations


# ---------------------------------------------------------------------- #
def _walk_imports(tree: ast.AST) -> List[Tuple[ast.stmt, bool]]:
    """Every import statement with a flag: is it deferred (function scope
    or under ``if TYPE_CHECKING:``)?"""
    found: List[Tuple[ast.stmt, bool]] = []

    def visit(node: ast.AST, deferred: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                found.append((child, deferred))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                visit(child, True)
            elif isinstance(child, ast.If) and _is_type_checking(child.test):
                visit(child, True)
            else:
                visit(child, deferred)

    visit(tree, False)
    return found


def _is_type_checking(test: ast.AST) -> bool:
    name = test.attr if isinstance(test, ast.Attribute) else getattr(test, "id", None)
    return name == "TYPE_CHECKING"


def _import_targets(node: ast.stmt, package_parts: List[str]) -> List[str]:
    """Top-level ``repro`` subpackages an import statement reaches."""
    targets: List[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            pieces = alias.name.split(".")
            if pieces[0] == "repro" and len(pieces) > 1:
                targets.append(pieces[1])
    elif isinstance(node, ast.ImportFrom):
        base: Optional[List[str]]
        if node.level == 0:
            base = []
        elif node.level == 1:
            base = list(package_parts)
        else:
            hops = node.level - 1
            base = list(package_parts[:-hops]) if hops <= len(package_parts) else None
        if base is None:
            return targets
        full = base + (node.module.split(".") if node.module else [])
        if full and full[0] == "repro":
            if len(full) > 1:
                targets.append(full[1])
            else:
                # ``from repro import x`` / ``from .. import x`` at the top:
                # each imported name is itself a subpackage.
                targets.extend(alias.name for alias in node.names)
    return targets
