"""Repo tooling (lint/CI helpers).

A package so ``python -m tools.reprolint`` works from the repo root and
the test suite can import the lint framework directly.
"""
