#!/usr/bin/env python3
"""Layering lint: batch recomposition belongs to the slot engine.

``BatchedNetwork.retain`` / ``BatchedNetwork.extend`` are the two
mutators whose calling convention carries the bit-exactness contract
(retain survivors *before* extending with admissions, ``extend([])``
no-op, fresh batch when nothing survives).  Those invariants are
centralised in :meth:`repro.runtime.slots.SlotEngine.recompose`; a
direct call anywhere else in ``src/repro`` re-opens the drift the
PR-7 refactor closed.  This lint machine-enforces the single-owner
seam: it fails when application code outside ``src/repro/runtime/``
calls ``retain``/``extend`` on a batch.

Detection is AST-based and deliberately conservative:

* any ``<expr>.retain(...)`` call — ``retain`` is the batch engine's
  vocabulary; nothing else in the tree defines it;
* ``<expr>.extend(...)`` calls whose receiver looks like a batch
  (``extend`` is also a list method, so the receiver's dotted source
  must match ``batch``/``BatchedNetwork``, e.g. ``self._batch.extend``
  or ``BatchedNetwork.extend``).

Usage:  python tools/check_layering.py [src-root]
        (defaults to src/repro; tests and tools are exempt — the
        engine's own suites exercise the seam directly)

Exit status: 0 when the layering holds, 1 otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The only package allowed to touch the batch mutators directly.
ALLOWED_PREFIX = ("src", "repro", "runtime")

#: Receiver pattern marking an ``.extend`` call as batch recomposition.
_BATCH_RECEIVER_RE = re.compile(r"batch", re.IGNORECASE)


def _dotted_source(node: ast.AST) -> str:
    """The dotted-name source of a call receiver (best effort)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def check_file(path: Path) -> list:
    """``(path, line, message)`` violations in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        method = node.func.attr
        if method not in ("retain", "extend"):
            continue
        receiver = _dotted_source(node.func.value)
        if method == "extend" and not _BATCH_RECEIVER_RE.search(receiver):
            continue
        violations.append(
            (
                path.relative_to(REPO_ROOT),
                node.lineno,
                f"{receiver or '<expr>'}.{method}(...) — batch recomposition is "
                "owned by repro.runtime.slots.SlotEngine.recompose",
            )
        )
    return violations


def main(argv: list) -> int:
    root = Path(argv[0]).resolve() if argv else REPO_ROOT / "src" / "repro"
    if not root.is_dir():
        print(f"check_layering: no such directory {root}", file=sys.stderr)
        return 1
    failures = []
    checked = 0
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(REPO_ROOT).parts
        if relative[: len(ALLOWED_PREFIX)] == ALLOWED_PREFIX:
            continue
        checked += 1
        failures.extend(check_file(path))
    if failures:
        print("check_layering: direct batch retain/extend outside repro.runtime:", file=sys.stderr)
        for source, line, message in failures:
            print(f"  {source}:{line}: {message}", file=sys.stderr)
        return 1
    print(f"check_layering: OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
