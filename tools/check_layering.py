#!/usr/bin/env python3
"""Deprecated shim — the layering lint now lives in ``tools.reprolint`` (RL001).

This entry point used to implement the batch ``retain``/``extend``
seam check directly.  That check is now the seam half of reprolint's
RL001 layering rule, which additionally enforces the import-layer map
(``isa``/``sim``/``fixedpoint``/``snn`` < ``runtime`` < ``csp`` <
``serve``).  See ``docs/LINTING.md``.

The shim keeps the historical CLI contract for scripts that still call
``python tools/check_layering.py``: it runs RL001 only, over ``src``,
prints the findings in reprolint's format and exits 0/1.  New callers
should invoke ``python -m tools.reprolint`` instead.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list) -> int:
    # Running as ``python tools/check_layering.py`` puts tools/ (not the
    # repo root) on sys.path[0]; make ``tools.reprolint`` importable.
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    import dataclasses

    from tools.reprolint.config import load_config
    from tools.reprolint.engine import run_reprolint

    print(
        "check_layering: deprecated — use 'python -m tools.reprolint' (rule RL001)",
        file=sys.stderr,
    )
    roots = tuple(argv) if argv else ("src",)
    # Other rules' inline waivers look "unused" when only RL001 runs, so
    # the stale-suppression check stays off in this compatibility path.
    only_rl001 = dataclasses.replace(
        load_config(REPO_ROOT),
        disable=("RL002", "RL003", "RL004", "RL005"),
        check_unused_suppressions=False,
    )
    result = run_reprolint(REPO_ROOT, roots, only_rl001)
    print(result.render_text())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
