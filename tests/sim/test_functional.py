"""Tests for the functional instruction-set simulator."""

import pytest

from repro.isa import assemble
from repro.sim import DEFAULT_MEMORY_MAP, FunctionalSimulator, Memory, MMIO_HALT, SimulationError


def run_program(source, *, max_instructions=100_000, origin=0, fast_dispatch=True):
    mem = Memory(DEFAULT_MEMORY_MAP())
    fsim = FunctionalSimulator(mem, fast_dispatch=fast_dispatch)
    fsim.load_program(assemble(source, origin=origin))
    fsim.run(max_instructions=max_instructions)
    return fsim


#: Both execution paths; the new edge-case suites run on each so the
#: fast dispatch handlers and the legacy chain stay pinned together.
BOTH_PATHS = pytest.mark.parametrize("fast", [True, False], ids=["fast", "legacy"])


class TestArithmetic:
    def test_add_sub(self):
        fsim = run_program("""
            li a0, 40
            li a1, 2
            add a2, a0, a1
            sub a3, a0, a1
            ebreak
        """)
        assert fsim.read_reg(12) == 42
        assert fsim.read_reg(13) == 38

    def test_signed_comparison(self):
        fsim = run_program("""
            li a0, -5
            li a1, 3
            slt a2, a0, a1
            sltu a3, a0, a1
            ebreak
        """)
        assert fsim.read_reg(12) == 1
        assert fsim.read_reg(13) == 0  # -5 as unsigned is huge

    def test_shifts(self):
        fsim = run_program("""
            li a0, -16
            srai a1, a0, 2
            srli a2, a0, 2
            slli a3, a0, 1
            ebreak
        """)
        assert fsim.read_reg_signed(11) == -4
        assert fsim.read_reg(12) == (0xFFFFFFF0 >> 2)
        assert fsim.read_reg_signed(13) == -32

    def test_logic_ops(self):
        fsim = run_program("""
            li a0, 0xF0F0
            li a1, 0x0FF0
            and a2, a0, a1
            or  a3, a0, a1
            xor a4, a0, a1
            andi a5, a0, 0xF0
            ebreak
        """)
        assert fsim.read_reg(12) == 0x00F0
        assert fsim.read_reg(13) == 0xFFF0
        assert fsim.read_reg(14) == 0xFF00
        assert fsim.read_reg(15) == 0xF0

    def test_lui_auipc(self):
        fsim = run_program("""
            lui a0, 0x12345
            auipc a1, 0x1
            ebreak
        """)
        assert fsim.read_reg(10) == 0x12345000
        assert fsim.read_reg(11) == 0x1000 + 4  # pc of auipc is 4

    def test_x0_is_hardwired_zero(self):
        fsim = run_program("""
            li t0, 99
            add x0, t0, t0
            ebreak
        """)
        assert fsim.read_reg(0) == 0


class TestMultiplyDivide:
    def test_mul(self):
        fsim = run_program("li a0, -7\nli a1, 6\nmul a2, a0, a1\nebreak")
        assert fsim.read_reg_signed(12) == -42

    def test_mulh_variants(self):
        fsim = run_program("""
            li a0, 0x40000000
            li a1, 4
            mulh a2, a0, a1
            mulhu a3, a0, a1
            ebreak
        """)
        assert fsim.read_reg(12) == 1
        assert fsim.read_reg(13) == 1

    def test_div_rem(self):
        fsim = run_program("""
            li a0, -43
            li a1, 5
            div a2, a0, a1
            rem a3, a0, a1
            divu a4, a0, a1
            ebreak
        """)
        assert fsim.read_reg_signed(12) == -8  # rounds toward zero
        assert fsim.read_reg_signed(13) == -3
        assert fsim.read_reg(14) == (0xFFFFFFFF - 42) // 5

    def test_divide_by_zero_semantics(self):
        fsim = run_program("""
            li a0, 17
            li a1, 0
            div a2, a0, a1
            rem a3, a0, a1
            ebreak
        """)
        assert fsim.read_reg(12) == 0xFFFFFFFF
        assert fsim.read_reg(13) == 17


class TestRV32MEdgeCases:
    """RISC-V M-extension corner semantics (unpriv spec §7.1/§7.2)."""

    @BOTH_PATHS
    def test_div_rem_by_zero(self, fast):
        fsim = run_program("""
            li a0, 17
            li a1, 0
            div a2, a0, a1
            rem a3, a0, a1
            divu a4, a0, a1
            remu a5, a0, a1
            ebreak
        """, fast_dispatch=fast)
        assert fsim.read_reg(12) == 0xFFFFFFFF   # div/0 -> -1
        assert fsim.read_reg(13) == 17           # rem/0 -> dividend
        assert fsim.read_reg(14) == 0xFFFFFFFF   # divu/0 -> all ones
        assert fsim.read_reg(15) == 17           # remu/0 -> dividend

    @BOTH_PATHS
    def test_div_rem_by_zero_negative_dividend(self, fast):
        fsim = run_program("""
            li a0, -17
            li a1, 0
            div a2, a0, a1
            rem a3, a0, a1
            ebreak
        """, fast_dispatch=fast)
        assert fsim.read_reg(12) == 0xFFFFFFFF
        assert fsim.read_reg_signed(13) == -17

    @BOTH_PATHS
    def test_signed_overflow_int_min_div_minus_one(self, fast):
        fsim = run_program("""
            li a0, -2147483648
            li a1, -1
            div a2, a0, a1
            rem a3, a0, a1
            divu a4, a0, a1
            remu a5, a0, a1
            ebreak
        """, fast_dispatch=fast)
        assert fsim.read_reg(12) == 0x80000000   # overflow: quotient = INT_MIN
        assert fsim.read_reg(13) == 0            # overflow: remainder = 0
        # Unsigned view: 0x80000000 / 0xFFFFFFFF = 0 rem 0x80000000.
        assert fsim.read_reg(14) == 0
        assert fsim.read_reg(15) == 0x80000000

    @BOTH_PATHS
    @pytest.mark.parametrize(
        "a,b",
        [(0x7FFFFFFF, 0x7FFFFFFF), (0x7FFFFFFF, -0x80000000),
         (-0x80000000, 0x7FFFFFFF), (-0x80000000, -0x80000000),
         (-1, -1), (-1, 1), (3, -7)],
        ids=["pp", "pn", "np", "nn", "mm", "m1", "mixed"],
    )
    def test_mulh_sign_combinations(self, fast, a, b):
        fsim = run_program(f"""
            li a0, {a}
            li a1, {b}
            mulh a2, a0, a1
            mulhsu a3, a0, a1
            mulhu a4, a0, a1
            mul a5, a0, a1
        """ + "\nebreak", fast_dispatch=fast)
        au = a & 0xFFFFFFFF
        bu = b & 0xFFFFFFFF
        a_s = au - (1 << 32) if au & 0x80000000 else au
        b_s = bu - (1 << 32) if bu & 0x80000000 else bu
        assert fsim.read_reg(12) == ((a_s * b_s) >> 32) & 0xFFFFFFFF
        assert fsim.read_reg(13) == ((a_s * bu) >> 32) & 0xFFFFFFFF
        assert fsim.read_reg(14) == ((au * bu) >> 32) & 0xFFFFFFFF
        assert fsim.read_reg(15) == (a_s * b_s) & 0xFFFFFFFF

    @BOTH_PATHS
    def test_division_rounds_toward_zero(self, fast):
        fsim = run_program("""
            li a0, -7
            li a1, 2
            div a2, a0, a1
            rem a3, a0, a1
            li a0, 7
            li a1, -2
            div a4, a0, a1
            rem a5, a0, a1
            ebreak
        """, fast_dispatch=fast)
        assert fsim.read_reg_signed(12) == -3   # not -4 (no flooring)
        assert fsim.read_reg_signed(13) == -1   # sign follows the dividend
        assert fsim.read_reg_signed(14) == -3
        assert fsim.read_reg_signed(15) == 1


class TestMMIOLoads:
    """Width semantics of loads from the MMIO cycle counter."""

    COUNT_LOOP = """
        li t0, {count}
    busy:
        addi t0, t0, -1
        bnez t0, busy
        li t1, {address}
        {load} t2, 0(t1)
        ebreak
    """

    def _run(self, load, count, fast):
        from repro.sim import MMIO_CYCLE_LOW

        return run_program(
            self.COUNT_LOOP.format(count=count, load=load, address=MMIO_CYCLE_LOW),
            fast_dispatch=fast,
            max_instructions=2_000_000,
        )

    @BOTH_PATHS
    def test_lw_reads_full_instret(self, fast):
        fsim = self._run("lw", 10, fast)
        # li(2) + 10 * 2 loop instructions + li + li = instret before the load.
        assert fsim.read_reg(7) == fsim.instret - 2  # load + ebreak retire after

    @BOTH_PATHS
    def test_lhu_lbu_truncate(self, fast):
        # Drive instret above 0xFF so truncation is observable.
        fsim = self._run("lbu", 200, fast)
        full = fsim.instret - 2
        assert fsim.read_reg(7) == full & 0xFF
        assert fsim.read_reg(7) != full
        fsim = self._run("lhu", 200, fast)
        assert fsim.read_reg(7) == (fsim.instret - 2) & 0xFFFF

    @BOTH_PATHS
    def test_lb_sign_extends(self, fast):
        # Land instret's low byte in [0x80, 0xFF]: the lb result is negative.
        for count in (70, 90, 110):
            fsim = self._run("lb", count, fast)
            full = fsim.instret - 2
            low = full & 0xFF
            if low & 0x80:
                assert fsim.read_reg_signed(7) == low - 0x100
                break
        else:  # pragma: no cover - loop counts above guarantee a hit
            raise AssertionError("no count produced a high low-byte")

    @BOTH_PATHS
    def test_lh_sign_extension_path(self, fast):
        fsim = self._run("lh", 5, fast)
        # Small instret: high bit clear, value passes through unchanged.
        assert fsim.read_reg(7) == fsim.instret - 2

    @BOTH_PATHS
    def test_load_from_other_mmio_address_raises(self, fast):
        from repro.sim import MMIO_HALT, MMIO_PUTCHAR

        for address in (MMIO_HALT, MMIO_PUTCHAR):
            with pytest.raises(SimulationError, match="unknown MMIO"):
                run_program(f"""
                    li t1, {address}
                    lw t2, 0(t1)
                    ebreak
                """, fast_dispatch=fast)

    @BOTH_PATHS
    def test_narrow_load_from_unknown_mmio_raises(self, fast):
        from repro.sim import MMIO_BASE

        with pytest.raises(SimulationError, match="unknown MMIO"):
            run_program(f"""
                li t1, {MMIO_BASE + 0x100}
                lbu t2, 0(t1)
                ebreak
            """, fast_dispatch=fast)


class TestControlFlow:
    def test_loop_sum(self):
        fsim = run_program("""
            li t0, 10
            li t1, 0
        loop:
            add t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        """)
        assert fsim.read_reg(6) == 55

    def test_function_call(self):
        fsim = run_program("""
            li a0, 5
            call double
            ebreak
        double:
            add a0, a0, a0
            ret
        """)
        assert fsim.read_reg(10) == 10

    def test_branch_variants(self):
        fsim = run_program("""
            li a0, 3
            li a1, 7
            li a2, 0
            bge a0, a1, skip
            addi a2, a2, 1
        skip:
            blt a0, a1, take
            addi a2, a2, 100
        take:
            bltu a1, a0, never
            addi a2, a2, 10
        never:
            ebreak
        """)
        assert fsim.read_reg(12) == 11

    def test_jalr_returns(self):
        fsim = run_program("""
            la t0, target
            jalr ra, 0(t0)
            ebreak
        target:
            li a0, 77
            jr ra
        """)
        assert fsim.read_reg(10) == 77


class TestMemoryInstructions:
    def test_word_store_load(self):
        fsim = run_program("""
            li t0, 0x10000000
            li t1, 0x12345678
            sw t1, 0(t0)
            lw t2, 0(t0)
            ebreak
        """)
        assert fsim.read_reg(7) == 0x12345678

    def test_byte_and_half_sign_extension(self):
        fsim = run_program("""
            li t0, 0x10000000
            li t1, 0xFFFF8880
            sw t1, 0(t0)
            lb t2, 0(t0)
            lbu t3, 0(t0)
            lh t4, 0(t0)
            lhu t5, 0(t0)
            ebreak
        """)
        assert fsim.read_reg_signed(7) == -128
        assert fsim.read_reg(28) == 0x80
        assert fsim.read_reg_signed(29) == -30592
        assert fsim.read_reg(30) == 0x8880


class TestEnvironment:
    def test_exit_syscall(self):
        fsim = run_program("""
            li a0, 3
            li a7, 93
            ecall
        """)
        assert fsim.halted and fsim.exit_code == 3

    def test_write_syscall(self):
        fsim = run_program("""
            li t0, 0x10000000
            li t1, 'H'
            sb t1, 0(t0)
            li t1, 'i'
            sb t1, 1(t0)
            li a0, 1
            li a1, 0x10000000
            li a2, 2
            li a7, 64
            ecall
            ebreak
        """)
        assert fsim.stdout_text == "Hi"

    def test_mmio_halt(self):
        fsim = run_program(f"""
            li t0, {MMIO_HALT}
            li t1, 9
            sw t1, 0(t0)
        """)
        assert fsim.halted and fsim.exit_code == 9

    def test_mmio_print_int(self):
        from repro.sim import MMIO_PRINT_INT

        fsim = run_program(f"""
            li t0, {MMIO_PRINT_INT}
            li t1, -12
            sw t1, 0(t0)
            ebreak
        """)
        assert fsim.debug_values == [-12]

    def test_csr_read_write(self):
        fsim = run_program("""
            li t0, 55
            csrrw x0, 0x340, t0
            csrrs t1, 0x340, x0
            ebreak
        """)
        assert fsim.read_reg(6) == 55

    def test_instruction_budget_enforced(self):
        mem = Memory(DEFAULT_MEMORY_MAP())
        fsim = FunctionalSimulator(mem)
        fsim.load_program(assemble("loop: j loop"))
        with pytest.raises(SimulationError):
            fsim.run(max_instructions=100)

    def test_step_after_halt_raises(self):
        fsim = run_program("ebreak")
        with pytest.raises(SimulationError):
            fsim.step()


class TestNeuromorphicInstructions:
    def test_full_neuron_update_sequence(self):
        from repro.fixedpoint import pack_vu_float, unpack_vu_float, Q15_16
        from repro.isa import IzhikevichParams, pack_nmldl_operands

        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
        vu = pack_vu_float(-60.0, -12.0)
        isyn = Q15_16.to_unsigned(Q15_16.from_float(8.0))
        fsim = run_program(f"""
            li a6, {rs1}
            li a7, {rs2}
            nmldl x0, a6, a7
            li t0, 0
            nmldh x0, t0, x0
            li a0, {vu}
            li a1, {isyn}
            li a2, 0x10000100
            nmpn a2, a0, a1
            li t1, 4
            nmdec a3, t1, a1
            ebreak
        """)
        # The VU word was stored at the address held in a2.
        stored = fsim.memory.load_word(0x10000100)
        v, u = unpack_vu_float(stored)
        assert -70.0 < v < 30.0
        assert fsim.read_reg(12) in (0, 1)  # spike flag written to a2
        # nmdec result is smaller in magnitude than the input current.
        from repro.isa import unpack_isyn

        assert 0 < unpack_isyn(fsim.read_reg(13)) < 8.0

    def test_nmpn_matches_python_npu(self):
        from repro.fixedpoint import pack_vu_float, Q15_16
        from repro.isa import IzhikevichParams, pack_nmldl_operands
        from repro.sim import NMConfig, NPU

        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.fast_spiking())
        vu = pack_vu_float(-55.0, -10.0)
        isyn = Q15_16.to_unsigned(Q15_16.from_float(12.0))
        fsim = run_program(f"""
            li a6, {rs1}
            li a7, {rs2}
            nmldl x0, a6, a7
            li t0, 0
            nmldh x0, t0, x0
            li a0, {vu}
            li a1, {isyn}
            li a2, 0x10000200
            nmpn a2, a0, a1
            ebreak
        """)
        cfg = NMConfig.from_words(rs1, rs2, 0)
        expected_word, expected_spike = NPU(cfg).execute_nmpn(vu, isyn)
        assert fsim.memory.load_word(0x10000200) == expected_word
        assert fsim.read_reg(12) == expected_spike

    def test_nmldl_sets_done_flag(self):
        fsim = run_program("""
            li a6, 0
            li a7, 0
            nmldl a5, a6, a7
            nmldh a4, x0, x0
            ebreak
        """)
        assert fsim.read_reg(15) == 1
        assert fsim.read_reg(14) == 1
