"""Tests for the NPU (nmpn) fixed-point Izhikevich update unit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import Q7_8, Q15_16, pack_vu_float, unpack_vu_float
from repro.isa import IzhikevichParams, pack_nmldh_operand, pack_nmldl_operands
from repro.sim import NMConfig, NPU, izhikevich_update_raw


@pytest.fixture
def rs_config():
    cfg = NMConfig()
    cfg.load_params(IzhikevichParams.regular_spiking())
    cfg.load_timestep(fine_timestep=False, pin_voltage=False)
    return cfg


class TestNMConfig:
    def test_load_params_words_matches_direct_load(self):
        params = IzhikevichParams(0.02, 0.2, -65.0, 8.0)
        rs1, rs2 = pack_nmldl_operands(params)
        via_words = NMConfig()
        via_words.load_params_words(rs1, rs2)
        direct = NMConfig()
        direct.load_params(params)
        assert (via_words.a_raw, via_words.b_raw, via_words.c_raw, via_words.d_raw) == (
            direct.a_raw,
            direct.b_raw,
            direct.c_raw,
            direct.d_raw,
        )

    def test_timestep_selection(self):
        cfg = NMConfig()
        cfg.load_timestep_word(pack_nmldh_operand(fine_timestep=False, pin_voltage=False))
        assert cfg.timestep_ms == 0.5 and cfg.h_shift == 1
        cfg.load_timestep_word(pack_nmldh_operand(fine_timestep=True, pin_voltage=True))
        assert cfg.timestep_ms == 0.125 and cfg.h_shift == 3 and cfg.pin_voltage

    def test_params_roundtrip_view(self, rs_config):
        p = rs_config.params
        assert p.a == pytest.approx(0.02, abs=1e-3)
        assert p.c == pytest.approx(-65.0, abs=1e-2)

    def test_from_words(self):
        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.fast_spiking())
        cfg = NMConfig.from_words(rs1, rs2, pack_nmldh_operand(fine_timestep=True, pin_voltage=False))
        assert cfg.params_loaded and cfg.timestep_loaded
        assert cfg.h_shift == 3


class TestSingleNeuronDynamics:
    def test_resting_neuron_stays_at_rest(self, rs_config):
        npu = NPU(rs_config)
        v, u = -65.0, -13.0
        for _ in range(200):
            v, u, spike = npu.update_float(v, u, 0.0)
            assert not spike
        # The RS neuron settles at its resting equilibrium (v* ≈ -70 mV).
        assert -75.0 < v < -60.0

    def test_constant_current_produces_tonic_spiking(self, rs_config):
        npu = NPU(rs_config)
        v, u = -65.0, -13.0
        spikes = 0
        for _ in range(2000):  # 1000 ms at 0.5 ms steps
            v, u, s = npu.update_float(v, u, 10.0)
            spikes += s
        assert 5 <= spikes <= 120  # tonic firing in a plausible range

    def test_stronger_current_fires_more(self, rs_config):
        npu = NPU(rs_config)

        def count(i_syn):
            v, u, spikes = -65.0, -13.0, 0
            for _ in range(2000):
                v, u, s = npu.update_float(v, u, i_syn)
                spikes += s
            return spikes

        assert count(20.0) > count(6.0)

    def test_spike_resets_to_c(self, rs_config):
        npu = NPU(rs_config)
        # Drive hard so a spike happens quickly, then check the reset value.
        v, u = -50.0, -13.0
        for _ in range(500):
            v, u, spike = npu.update_float(v, u, 30.0)
            if spike:
                assert v == pytest.approx(-65.0, abs=0.01)
                return
        pytest.fail("neuron never spiked under strong drive")

    def test_spike_increments_u_by_d(self, rs_config):
        npu = NPU(rs_config)
        v, u = -50.0, -13.0
        for _ in range(500):
            u_prev = u
            v, u, spike = npu.update_float(v, u, 30.0)
            if spike:
                assert u > u_prev  # d = 8 added (plus the Euler term)
                return
        pytest.fail("neuron never spiked under strong drive")

    def test_pin_voltage_caps_at_reset(self):
        cfg = NMConfig()
        cfg.load_params(IzhikevichParams.fast_spiking())
        cfg.load_timestep(fine_timestep=False, pin_voltage=True)
        npu = NPU(cfg)
        v, u = -65.0, -13.0
        for _ in range(300):
            v, u, _ = npu.update_float(v, u, -40.0)  # strong inhibition
            assert v >= -65.0 - 0.01

    def test_without_pin_voltage_can_go_below_reset(self):
        cfg = NMConfig()
        cfg.load_params(IzhikevichParams.fast_spiking())
        cfg.load_timestep(fine_timestep=False, pin_voltage=False)
        npu = NPU(cfg)
        v, u = -65.0, -13.0
        values = []
        for _ in range(300):
            v, u, _ = npu.update_float(v, u, -40.0)
            values.append(v)
        assert min(values) < -65.5

    def test_fine_timestep_changes_trajectory(self):
        coarse = NMConfig()
        coarse.load_params(IzhikevichParams.regular_spiking())
        coarse.load_timestep(fine_timestep=False)
        fine = NMConfig()
        fine.load_params(IzhikevichParams.regular_spiking())
        fine.load_timestep(fine_timestep=True)
        vc, uc, _ = NPU(coarse).update_float(-60.0, -13.0, 10.0)
        vf, uf, _ = NPU(fine).update_float(-60.0, -13.0, 10.0)
        # The fine step moves a quarter as far per call.
        assert abs(vf + 60.0) < abs(vc + 60.0)


class TestInstructionInterface:
    def test_execute_nmpn_matches_update_raw(self, rs_config):
        npu = NPU(rs_config)
        vu_word = pack_vu_float(-60.0, -12.0)
        isyn_word = Q15_16.to_unsigned(Q15_16.from_float(7.5))
        new_word, spike = npu.execute_nmpn(vu_word, isyn_word)
        v, u = unpack_vu_float(new_word)
        v2, u2, s2 = npu.update_float(-60.0, -12.0, 7.5)
        assert v == pytest.approx(v2, abs=1e-9)
        assert u == pytest.approx(u2, abs=1e-9)
        assert spike == int(s2)

    def test_spike_flag_is_zero_or_one(self, rs_config):
        npu = NPU(rs_config)
        _, spike = npu.execute_nmpn(pack_vu_float(-65.0, -13.0), 0)
        assert spike in (0, 1)


class TestVectorisedPath:
    def test_array_matches_scalar(self, rs_config):
        npu = NPU(rs_config)
        v = np.asarray(Q7_8.from_float(np.array([-65.0, -60.0, -55.0, 20.0])))
        u = np.asarray(Q7_8.from_float(np.array([-13.0, -12.0, -11.0, -5.0])))
        i = np.asarray(Q15_16.from_float(np.array([0.0, 5.0, 10.0, 15.0])))
        v_vec, u_vec, s_vec = npu.update_raw(v, u, i)
        for k in range(4):
            v_s, u_s, s_s = npu.update_raw(int(v[k]), int(u[k]), int(i[k]))
            assert v_vec[k] == v_s
            assert u_vec[k] == u_s
            assert s_vec[k] == s_s

    def test_per_neuron_parameters(self, rs_config):
        # izhikevich_update_raw accepts per-neuron parameter arrays.
        v = np.asarray(Q7_8.from_float(np.array([-65.0, -65.0])))
        u = np.asarray(Q7_8.from_float(np.array([-10.0, -10.0])))
        i = np.asarray(Q15_16.from_float(np.array([10.0, 10.0])))
        from repro.fixedpoint import Q4_11

        a = np.asarray(Q4_11.from_float(np.array([0.02, 0.1])))
        b = np.asarray(Q4_11.from_float(np.array([0.2, 0.2])))
        c = np.asarray(Q7_8.from_float(np.array([-65.0, -65.0])))
        d = np.asarray(Q4_11.from_float(np.array([8.0, 2.0])))
        v2, u2, _ = izhikevich_update_raw(v, u, i, a_raw=a, b_raw=b, c_raw=c, d_raw=d, h_shift=1)
        # Different `a` parameters must give different recovery updates.
        assert u2[0] != u2[1]


class TestInvariants:
    @settings(max_examples=150, deadline=None)
    @given(
        st.floats(min_value=-90.0, max_value=29.0),
        st.floats(min_value=-25.0, max_value=25.0),
        st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_output_always_in_q78_range(self, v, u, isyn):
        cfg = NMConfig()
        cfg.load_params(IzhikevichParams.regular_spiking())
        cfg.load_timestep()
        v_raw, u_raw, spike = NPU(cfg).update_raw(
            Q7_8.from_float(v), Q7_8.from_float(u), Q15_16.from_float(isyn)
        )
        assert Q7_8.raw_min <= v_raw <= Q7_8.raw_max
        assert Q7_8.raw_min <= u_raw <= Q7_8.raw_max
        assert spike in (0, 1)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-90.0, max_value=25.0), st.floats(min_value=-20.0, max_value=20.0))
    def test_determinism(self, v, u):
        cfg = NMConfig()
        cfg.load_params(IzhikevichParams.regular_spiking())
        cfg.load_timestep()
        npu = NPU(cfg)
        first = npu.update_raw(Q7_8.from_float(v), Q7_8.from_float(u), Q15_16.from_float(5.0))
        second = npu.update_raw(Q7_8.from_float(v), Q7_8.from_float(u), Q15_16.from_float(5.0))
        assert first == second


class TestUpdateRawOverrideHook:
    def test_subclass_override_reaches_execute_nmpn(self):
        """nmpn must dispatch through an overridden update_raw hook."""
        from repro.fixedpoint import pack_vu_float, unpack_vu, Q15_16
        from repro.isa import IzhikevichParams, pack_nmldl_operands
        from repro.sim import NMConfig, NPU

        calls = []

        class TracingNPU(NPU):
            def update_raw(self, v_raw, u_raw, isyn_raw):
                calls.append((v_raw, u_raw, isyn_raw))
                return super().update_raw(v_raw, u_raw, isyn_raw)

        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
        cfg = NMConfig.from_words(rs1, rs2, 0)
        vu = pack_vu_float(-60.0, -12.0)
        isyn = Q15_16.to_unsigned(Q15_16.from_float(8.0))
        traced_word, traced_spike = TracingNPU(cfg).execute_nmpn(vu, isyn)
        plain_word, plain_spike = NPU(cfg).execute_nmpn(vu, isyn)
        assert calls == [(*unpack_vu(vu), Q15_16.from_unsigned(isyn))]
        assert (traced_word, traced_spike) == (plain_word, plain_spike)

    def test_instance_level_patch_reaches_execute_nmpn(self):
        """An instance-attribute update_raw stub must also be dispatched."""
        from repro.fixedpoint import pack_vu_float, Q15_16
        from repro.isa import IzhikevichParams, pack_nmldl_operands
        from repro.sim import NMConfig, NPU

        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
        npu = NPU(NMConfig.from_words(rs1, rs2, 0))
        npu.update_raw = lambda v, u, i: (7, -3, 1)
        word, spike = npu.execute_nmpn(
            pack_vu_float(-60.0, -12.0), Q15_16.to_unsigned(Q15_16.from_float(8.0))
        )
        assert spike == 1
        assert word == ((7 & 0xFFFF) << 16) | (-3 & 0xFFFF)
