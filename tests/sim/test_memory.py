"""Tests for the sparse memory model and memory map."""

import pytest

from repro.sim import DEFAULT_MEMORY_MAP, Memory, MemoryError32, MemoryMap, Region


class TestRegions:
    def test_default_map_regions(self):
        mm = DEFAULT_MEMORY_MAP()
        assert {r.name for r in mm.regions} >= {"sdram", "onchip", "stack", "mmio"}

    def test_find(self):
        mm = DEFAULT_MEMORY_MAP()
        assert mm.find(0x1000_0010).name == "onchip"
        assert mm.find(0xF000_0000).name == "mmio"
        assert mm.find(0x9000_0000) is None

    def test_region_lookup_by_name(self):
        mm = DEFAULT_MEMORY_MAP()
        assert mm.region("sdram").cacheable
        assert not mm.region("mmio").cacheable
        with pytest.raises(KeyError):
            mm.region("nvram")

    def test_overlap_rejected(self):
        mm = MemoryMap()
        mm.add(Region("a", base=0, size=0x1000))
        with pytest.raises(MemoryError32):
            mm.add(Region("b", base=0x800, size=0x1000))

    def test_contains(self):
        r = Region("x", base=0x100, size=0x100)
        assert r.contains(0x100) and r.contains(0x1FF) and not r.contains(0x200)


class TestMemoryAccess:
    def test_word_roundtrip(self):
        mem = Memory()
        mem.store_word(0x1000, 0xDEADBEEF)
        assert mem.load_word(0x1000) == 0xDEADBEEF

    def test_little_endian_bytes(self):
        mem = Memory()
        mem.store_word(0x0, 0x0A0B0C0D)
        assert mem.load_byte(0x0) == 0x0D
        assert mem.load_byte(0x3) == 0x0A

    def test_half_word(self):
        mem = Memory()
        mem.store_half(0x10, 0xBEEF)
        assert mem.load_half(0x10) == 0xBEEF
        mem.store_word(0x20, 0x12345678)
        assert mem.load_half(0x20) == 0x5678
        assert mem.load_half(0x22) == 0x1234

    def test_unwritten_memory_reads_zero(self):
        assert Memory().load_word(0x123450) == 0

    def test_misaligned_word_raises(self):
        mem = Memory()
        with pytest.raises(MemoryError32):
            mem.load_word(0x1002)
        with pytest.raises(MemoryError32):
            mem.store_word(0x1001, 1)

    def test_misaligned_half_raises(self):
        with pytest.raises(MemoryError32):
            Memory().load_half(0x3)

    def test_store_masks_to_32bit(self):
        mem = Memory()
        mem.store_word(0x0, -1)
        assert mem.load_word(0x0) == 0xFFFFFFFF

    def test_strict_mode(self):
        mem = Memory(DEFAULT_MEMORY_MAP(), strict=True)
        mem.store_word(0x1000_0000, 5)
        with pytest.raises(MemoryError32):
            mem.store_word(0x9000_0000, 5)

    def test_out_of_range_address(self):
        with pytest.raises(MemoryError32):
            Memory().store_word(1 << 33, 0)

    def test_cross_page_word(self):
        mem = Memory()
        # A word can never be misaligned across a page with 4-byte alignment,
        # but bytes around a page boundary must still work.
        base = 0xFFC
        mem.store_word(base, 0x11223344)
        assert mem.load_word(base) == 0x11223344
        mem.store_byte(0xFFF, 0xAA)
        mem.store_byte(0x1000, 0xBB)
        assert mem.load_byte(0xFFF) == 0xAA
        assert mem.load_byte(0x1000) == 0xBB


class TestBulkHelpers:
    def test_load_program(self):
        mem = Memory()
        mem.load_program([1, 2, 3], base=0x100)
        assert mem.read_words(0x100, 3) == [1, 2, 3]

    def test_load_and_read_bytes(self):
        mem = Memory()
        mem.load_bytes(b"hello", base=0x200)
        assert mem.read_bytes(0x200, 5) == b"hello"

    def test_allocated_bytes_is_sparse(self):
        mem = Memory()
        mem.store_word(0x0, 1)
        mem.store_word(0x4000_0000, 1)
        assert mem.allocated_bytes == 2 * 4096

    def test_region_of(self):
        mem = Memory(DEFAULT_MEMORY_MAP())
        assert mem.region_of(0x1000_0000).name == "onchip"
        assert Memory().region_of(0x0) is None
