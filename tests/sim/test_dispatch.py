"""Differential tests: predecoded dispatch fast path vs. legacy chain.

The fast path (``repro.sim.dispatch``) must be bit-identical to the
legacy ``FunctionalSimulator._execute`` chain: same register/memory
trajectories, same ``ExecRecord`` streams, same spikes, same exceptions.
These tests drive randomized and directed programs through both paths in
lockstep, and cross-check the scalar NPU/DCU integer datapaths against
their NumPy array twins.
"""

import numpy as np
import pytest

from repro.isa import assemble
from repro.sim import DEFAULT_MEMORY_MAP, FunctionalSimulator, Memory

DATA_BASE = 0x1000_0000


def make_pair(source, *, origin=0):
    """Two freshly loaded simulators: (fast dispatch, legacy chain)."""
    sims = []
    for fast in (True, False):
        mem = Memory(DEFAULT_MEMORY_MAP())
        fsim = FunctionalSimulator(mem, fast_dispatch=fast)
        fsim.load_program(assemble(source, origin=origin))
        sims.append(fsim)
    return sims


def assert_records_equal(fast_rec, legacy_rec):
    assert fast_rec.pc == legacy_rec.pc
    assert fast_rec.instr.name == legacy_rec.instr.name
    assert fast_rec.instr.word == legacy_rec.instr.word
    assert fast_rec.next_pc == legacy_rec.next_pc
    assert fast_rec.mem_address == legacy_rec.mem_address
    assert fast_rec.mem_is_write == legacy_rec.mem_is_write
    assert fast_rec.control_transfer == legacy_rec.control_transfer
    assert fast_rec.spike == legacy_rec.spike


def run_lockstep(source, *, max_instructions=200_000):
    """Step both paths together, comparing records and state each step."""
    fast, legacy = make_pair(source)
    executed = 0
    while not legacy.halted:
        assert not fast.halted
        assert executed < max_instructions, "lockstep budget exhausted"
        assert_records_equal(fast.step(), legacy.step())
        assert fast.regs == legacy.regs
        assert fast.pc == legacy.pc
        executed += 1
    assert fast.halted
    assert fast.exit_code == legacy.exit_code
    assert fast.instret == legacy.instret
    assert fast.spike_count == legacy.spike_count
    assert fast.csrs == legacy.csrs
    assert fast.stdout == legacy.stdout
    assert fast.debug_values == legacy.debug_values
    return fast, legacy


# ---------------------------------------------------------------------- #
# Randomized instruction streams
# ---------------------------------------------------------------------- #
_ALU_RR = ["add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
           "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"]
_ALU_RI = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
_SHIFT_RI = ["slli", "srli", "srai"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]
_LOADS = {"lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}
_STORES = {"sw": 4, "sh": 2, "sb": 1}


def random_program(rng, length=300):
    """A random, always-terminating torture program over x5..x15.

    Branches only jump forward by a few slots and the program tail is
    padded with ``ebreak``s, so every path halts.  Memory accesses stay
    inside a private scratch window with width-aligned offsets.
    """
    lines = [
        f"    li x28, {DATA_BASE}",
    ]
    # Seed the working registers with random 32-bit values.
    for reg in range(5, 16):
        lines.append(f"    li x{reg}, {int(rng.integers(0, 1 << 32)) - (1 << 31)}")
    body = []
    for i in range(length):
        body.append(f"L{i}:")
        kind = rng.choice(["rr", "ri", "shift", "branch", "load", "store", "lui", "auipc"],
                          p=[0.3, 0.2, 0.1, 0.1, 0.12, 0.12, 0.03, 0.03])
        rd = int(rng.integers(5, 16))
        rs1 = int(rng.integers(5, 16))
        rs2 = int(rng.integers(5, 16))
        if kind == "rr":
            op = rng.choice(_ALU_RR)
            body.append(f"    {op} x{rd}, x{rs1}, x{rs2}")
        elif kind == "ri":
            op = rng.choice(_ALU_RI)
            imm = int(rng.integers(-2048, 2048))
            body.append(f"    {op} x{rd}, x{rs1}, {imm}")
        elif kind == "shift":
            op = rng.choice(_SHIFT_RI)
            body.append(f"    {op} x{rd}, x{rs1}, {int(rng.integers(0, 32))}")
        elif kind == "branch":
            op = rng.choice(_BRANCHES)
            target = min(i + int(rng.integers(1, 5)), length)
            body.append(f"    {op} x{rs1}, x{rs2}, L{target}")
        elif kind == "load":
            op = rng.choice(list(_LOADS))
            width = _LOADS[op]
            offset = int(rng.integers(0, 256 // width)) * width
            body.append(f"    {op} x{rd}, {offset}(x28)")
        elif kind == "store":
            op = rng.choice(list(_STORES))
            width = _STORES[op]
            offset = int(rng.integers(0, 256 // width)) * width
            body.append(f"    {op} x{rs2}, {offset}(x28)")
        elif kind == "lui":
            body.append(f"    lui x{rd}, {int(rng.integers(0, 1 << 20))}")
        else:  # auipc
            body.append(f"    auipc x{rd}, {int(rng.integers(0, 1 << 20))}")
    body.append(f"L{length}:")
    body.append("    ebreak")
    body.append("    ebreak")
    return "\n".join(lines + body)


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_torture_streams_match(self, seed):
        source = random_program(np.random.default_rng(seed))
        fast, legacy = run_lockstep(source)
        # The scratch window must end up byte-identical.
        assert fast.memory.read_bytes(DATA_BASE, 256) == legacy.memory.read_bytes(DATA_BASE, 256)

    def test_eighty_twenty_workload_matches(self):
        from repro.codegen import build_eighty_twenty_workload

        workload = build_eighty_twenty_workload(num_neurons=16, num_steps=4)
        fast = workload.make_simulator()
        legacy = workload.make_simulator(fast_dispatch=False)
        fast.run()
        legacy.run()
        assert fast.instret == legacy.instret
        assert fast.spike_count == legacy.spike_count
        assert workload.total_spikes(fast) == workload.total_spikes(legacy)
        assert workload.vu_checksum(fast) == workload.vu_checksum(legacy)
        assert fast.regs == legacy.regs

    def test_baseline_kernel_matches(self):
        from repro.codegen import build_eighty_twenty_workload

        workload = build_eighty_twenty_workload(num_neurons=8, num_steps=3, kind="baseline")
        fast = workload.make_simulator()
        legacy = workload.make_simulator(fast_dispatch=False)
        fast.run()
        legacy.run()
        assert workload.total_spikes(fast) == workload.total_spikes(legacy)
        assert workload.vu_checksum(fast) == workload.vu_checksum(legacy)


# ---------------------------------------------------------------------- #
# Directed coverage of record fields and environment semantics
# ---------------------------------------------------------------------- #
class TestDirectedDifferential:
    def test_control_transfer_records(self):
        # Includes a taken branch whose offset is +4: next_pc equals the
        # fall-through address but control_transfer must still be True.
        run_lockstep("""
            li a0, 1
            li a1, 1
            beq a0, a1, next
        next:
            bne a0, a1, skip
            jal ra, sub
            j end
        sub:
            jr ra
        skip:
            addi a2, a2, 1
        end:
            ebreak
        """)

    def test_csr_and_ecall_records(self):
        run_lockstep("""
            li t0, 0x55
            csrrw t1, 0x340, t0
            csrrs t2, 0x340, t0
            csrrc t3, 0x340, t0
            csrrw x0, 0x341, t3
            li a7, 1234
            ecall
            li a0, 7
            li a7, 93
            ecall
        """)

    def test_write_syscall_and_mmio_stores(self):
        from repro.sim import MMIO_PRINT_INT, MMIO_PUTCHAR

        run_lockstep(f"""
            li t0, {DATA_BASE}
            li t1, 'O'
            sb t1, 0(t0)
            li t1, 'K'
            sb t1, 1(t0)
            li a0, 1
            li a1, {DATA_BASE}
            li a2, 2
            li a7, 64
            ecall
            li t2, {MMIO_PUTCHAR}
            li t3, '!'
            sw t3, 0(t2)
            li t2, {MMIO_PRINT_INT}
            li t3, -99
            sw t3, 0(t2)
            ebreak
        """)

    def test_nmpn_record_stream(self):
        from repro.fixedpoint import pack_vu_float, Q15_16
        from repro.isa import IzhikevichParams, pack_nmldl_operands

        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
        vu = pack_vu_float(-60.0, -12.0)
        isyn = Q15_16.to_unsigned(Q15_16.from_float(9.0))
        run_lockstep(f"""
            li a6, {rs1}
            li a7, {rs2}
            nmldl x0, a6, a7
            li t0, 0
            nmldh x0, t0, x0
            li a0, {vu}
            li a1, {isyn}
            li a2, {DATA_BASE + 0x100}
            nmpn a2, a0, a1
            li t1, 4
            nmdec a3, t1, a1
            ebreak
        """)

    def test_both_paths_raise_identically_on_illegal_pc(self):
        # Jump into a zero word: both paths must fail the same way.
        fast, legacy = make_pair("li t0, 64\njr t0\n")
        exc_fast = _exception_of(fast)
        exc_legacy = _exception_of(legacy)
        assert type(exc_fast) is type(exc_legacy)
        assert str(exc_fast) == str(exc_legacy)

    def test_run_matches_step_loop_on_fast_path(self):
        source = """
            li t0, 25
            li t1, 0
        loop:
            add t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        """
        run_sim, step_sim = make_pair(source)  # both fast; second stepped
        step_sim.fast_dispatch = True
        run_sim.run()
        while not step_sim.halted:
            step_sim.step()
        assert run_sim.regs == step_sim.regs
        assert run_sim.instret == step_sim.instret
        assert run_sim.pc == step_sim.pc

    def test_trace_hook_sees_records_on_fast_path(self):
        source = "li t0, 3\nli t1, 4\nadd t2, t0, t1\nebreak"
        fast, legacy = make_pair(source)
        fast_records, legacy_records = [], []
        fast.trace_hook = lambda sim, rec: fast_records.append(rec)
        legacy.trace_hook = lambda sim, rec: legacy_records.append(rec)
        fast.run()
        legacy.run()
        assert len(fast_records) == len(legacy_records) == fast.instret
        for fast_rec, legacy_rec in zip(fast_records, legacy_records):
            assert_records_equal(fast_rec, legacy_rec)


def _exception_of(sim):
    try:
        sim.run(max_instructions=100)
    except Exception as exc:  # noqa: BLE001 - differential comparison
        return exc
    raise AssertionError("expected the program to fault")


# ---------------------------------------------------------------------- #
# Scalar NPU/DCU datapaths vs. their NumPy array twins
# ---------------------------------------------------------------------- #
class TestScalarDatapathEquivalence:
    @pytest.mark.parametrize("pin_voltage", [False, True])
    @pytest.mark.parametrize("fine_timestep", [False, True])
    def test_nmpn_scalar_matches_array_path(self, pin_voltage, fine_timestep):
        from repro.isa import IzhikevichParams, pack_nmldl_operands, pack_nmldh_operand
        from repro.sim import NMConfig, NPU
        from repro.sim.npu import izhikevich_update_raw

        rng = np.random.default_rng(42 + pin_voltage + 2 * fine_timestep)
        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
        cfg = NMConfig.from_words(
            rs1, rs2, pack_nmldh_operand(fine_timestep=fine_timestep, pin_voltage=pin_voltage)
        )
        npu = NPU(cfg)
        for _ in range(500):
            vu_word = int(rng.integers(0, 1 << 32))
            isyn_word = int(rng.integers(0, 1 << 32))
            new_vu, spike = npu.execute_nmpn(vu_word, isyn_word)
            # Reference: the vectorised int64 path, one-element arrays.
            from repro.fixedpoint import Q15_16
            from repro.fixedpoint.vuword import pack_vu, unpack_vu

            v_raw, u_raw = unpack_vu(vu_word)
            v_ref, u_ref, spike_ref = izhikevich_update_raw(
                np.array([v_raw]), np.array([u_raw]),
                np.array([Q15_16.from_unsigned(isyn_word)]),
                a_raw=cfg.a_raw, b_raw=cfg.b_raw, c_raw=cfg.c_raw, d_raw=cfg.d_raw,
                h_shift=cfg.h_shift, pin_voltage=cfg.pin_voltage,
            )
            assert new_vu == int(pack_vu(int(v_ref[0]), int(u_ref[0])))
            assert spike == int(spike_ref[0])

    def test_nmdec_scalar_matches_array_path(self):
        from repro.fixedpoint import Q15_16
        from repro.sim import DCU, NMConfig

        rng = np.random.default_rng(7)
        for fine in (False, True):
            cfg = NMConfig()
            cfg.load_timestep(fine_timestep=fine)
            dcu = DCU(cfg)
            for _ in range(300):
                tau = int(rng.integers(1, 10))
                isyn_word = int(rng.integers(0, 1 << 32))
                scalar = dcu.execute_nmdec(tau, isyn_word)
                reference = Q15_16.to_unsigned(
                    int(dcu.decay_raw(np.array([Q15_16.from_unsigned(isyn_word)]), tau)[0])
                )
                assert scalar == reference

    def test_nmdec_rejects_bad_tau(self):
        from repro.sim import DCU

        with pytest.raises(ValueError, match="tau select"):
            DCU().execute_nmdec(0, 100)
        with pytest.raises(ValueError, match="tau select"):
            DCU().execute_nmdec(10, 100)

    def test_nmldl_word_unpacking_matches_qformats(self):
        from repro.fixedpoint import Q4_11, Q7_8
        from repro.sim import NMConfig

        rng = np.random.default_rng(11)
        for _ in range(200):
            rs1 = int(rng.integers(0, 1 << 32))
            rs2 = int(rng.integers(0, 1 << 32))
            cfg = NMConfig()
            cfg.load_params_words(rs1, rs2)
            assert cfg.a_raw == Q4_11.from_unsigned(rs1 & 0xFFFF)
            assert cfg.b_raw == Q4_11.from_unsigned((rs1 >> 16) & 0xFFFF)
            assert cfg.c_raw == Q7_8.from_unsigned(rs2 & 0xFFFF)
            assert cfg.d_raw == Q4_11.from_unsigned((rs2 >> 16) & 0xFFFF)


# ---------------------------------------------------------------------- #
# Dispatch cache lifecycle
# ---------------------------------------------------------------------- #
class TestDispatchCache:
    def test_reload_invalidates_handlers(self):
        mem = Memory(DEFAULT_MEMORY_MAP())
        fsim = FunctionalSimulator(mem)
        fsim.load_program(assemble("li a0, 1\nebreak"))
        fsim.run()
        assert fsim.read_reg(10) == 1
        # Reload a different program at the same PCs: handlers must refresh.
        fsim.load_program(assemble("li a0, 2\nebreak"))
        fsim.halted = False
        fsim.pc = 0
        fsim.run()
        assert fsim.read_reg(10) == 2

    def test_peek_decode_tolerates_garbage(self):
        mem = Memory(DEFAULT_MEMORY_MAP())
        fsim = FunctionalSimulator(mem)
        fsim.load_program(assemble("ebreak"))
        assert fsim.peek_decode(0) is not None
        assert fsim.peek_decode(2) is None          # misaligned
        assert fsim.peek_decode(0x100) is None      # zero word: undecodable
        mem.store_word(0x200, 0xFFFFFFFF)
        assert fsim.peek_decode(0x200) is None      # illegal encoding
