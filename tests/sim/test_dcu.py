"""Tests for the DCU (nmdec) shift-add decay unit, including Table II."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import Q15_16
from repro.sim import DCU, NMConfig, SHIFT_SELECTIONS, approx_divide, approximation_error
from repro.sim.dcu import approximation_error_table, approximation_factor


class TestShiftSelections:
    def test_all_dividers_covered(self):
        assert set(SHIFT_SELECTIONS) == set(range(1, 10))

    def test_exact_powers_of_two(self):
        assert SHIFT_SELECTIONS[2] == (1,)
        assert SHIFT_SELECTIONS[4] == (2,)
        assert SHIFT_SELECTIONS[8] == (3,)

    def test_paper_table2_combination_for_seven(self):
        assert SHIFT_SELECTIONS[7] == (3, 6, 9)

    def test_shift_factors_within_one_to_nine(self):
        for divider, shifts in SHIFT_SELECTIONS.items():
            if divider == 1:
                continue
            assert all(1 <= s <= 9 for s in shifts)


class TestApproximationErrors:
    @pytest.mark.parametrize(
        "divider,expected",
        [(2, 0.0), (3, 0.3906), (4, 0.0), (5, 0.3906), (7, 0.1953), (8, 0.0)],
    )
    def test_matches_paper_table2(self, divider, expected):
        assert approximation_error(divider) == pytest.approx(expected, abs=1e-3)

    def test_divider_six_recomputed(self):
        # The paper prints 12.1093 % for /6, but its own shift selection
        # yields about 0.39 % — we report the recomputed value.
        assert approximation_error(6) == pytest.approx(0.3906, abs=1e-3)

    def test_all_errors_below_half_percent(self):
        for divider in range(2, 10):
            assert approximation_error(divider) < 0.5

    def test_eq7_example_value(self):
        # Paper Eq. (7): x/7 approximated as 0.142578125.
        assert approximation_factor(7) == pytest.approx(0.142578125, abs=1e-12)

    def test_table_structure(self):
        table = approximation_error_table()
        assert set(table) == set(range(2, 9))
        for row in table.values():
            assert {"shifts", "approx_value", "exact_value", "approx_error_percent"} <= set(row)


class TestApproxDivide:
    def test_exact_for_power_of_two(self):
        assert approx_divide(1 << 20, 4) == (1 << 20) >> 2

    def test_close_to_true_division(self):
        value = Q15_16.from_float(1000.0)
        for divider in range(2, 10):
            approx = approx_divide(value, divider)
            assert approx == pytest.approx(value / divider, rel=0.01)

    def test_vectorised(self):
        values = np.array([1 << 16, 7 << 16, 100 << 16], dtype=np.int64)
        out = approx_divide(values, 7)
        assert out.shape == values.shape

    def test_invalid_divider(self):
        with pytest.raises(ValueError):
            approx_divide(100, 10)
        with pytest.raises(ValueError):
            approx_divide(100, 0)


class TestDCU:
    def _dcu(self, *, fine=False):
        cfg = NMConfig()
        cfg.load_timestep(fine_timestep=fine)
        return DCU(cfg)

    def test_decay_reduces_magnitude(self):
        dcu = self._dcu()
        for value in (100.0, -100.0, 3.5):
            decayed = dcu.decay_float(value, 4)
            assert abs(decayed) < abs(value)
            assert np.sign(decayed) == np.sign(value)

    def test_zero_stays_zero(self):
        assert self._dcu().decay_float(0.0, 3) == 0.0

    def test_decay_factor_matches_formula(self):
        dcu = self._dcu()
        value = 1000.0
        factor = dcu.effective_decay_factor(4)
        assert dcu.decay_float(value, 4) == pytest.approx(value * factor, rel=1e-3)

    def test_fine_timestep_decays_less(self):
        coarse = self._dcu(fine=False).decay_float(1000.0, 2)
        fine = self._dcu(fine=True).decay_float(1000.0, 2)
        assert fine > coarse

    def test_repeated_decay_converges_to_zero(self):
        dcu = self._dcu()
        raw = Q15_16.from_float(500.0)
        for _ in range(2000):
            raw = dcu.decay_raw(raw, 2)
        assert abs(Q15_16.to_float(raw)) < 1.0

    def test_execute_nmdec_word_interface(self):
        dcu = self._dcu()
        isyn_word = Q15_16.to_unsigned(Q15_16.from_float(-20.0))
        out = dcu.execute_nmdec(5, isyn_word)
        assert Q15_16.to_float(Q15_16.from_unsigned(out)) == pytest.approx(
            dcu.decay_float(-20.0, 5), abs=1e-4
        )

    def test_invalid_tau_select(self):
        with pytest.raises(ValueError):
            self._dcu().decay_raw(100, 0)
        with pytest.raises(ValueError):
            self._dcu().decay_raw(100, 12)

    def test_vectorised_decay(self):
        dcu = self._dcu()
        raw = np.asarray(Q15_16.from_float(np.array([10.0, -10.0, 0.0])), dtype=np.int64)
        out = dcu.decay_raw(raw, 3)
        assert out.shape == raw.shape
        assert abs(out[0]) < raw[0]


@settings(max_examples=150, deadline=None)
@given(st.floats(min_value=-2000, max_value=2000), st.integers(min_value=1, max_value=9))
def test_decay_never_overshoots(value, tau):
    """A decay step shrinks the (quantised) current and keeps its sign.

    The comparison is made against the Q15.16-quantised input because the
    DCU operates on the stored raw value; currents within a few LSBs of
    zero may flip sign due to the floor behaviour of the arithmetic shift,
    which is why the sign check applies only above that granularity.
    """
    cfg = NMConfig()
    cfg.load_timestep()
    dcu = DCU(cfg)
    quantised = Q15_16.to_float(Q15_16.from_float(value))
    decayed = dcu.decay_float(quantised, tau)
    assert abs(decayed) <= abs(quantised) + 4 * Q15_16.resolution
    if abs(quantised) > 0.01:
        assert np.sign(decayed) == np.sign(quantised) or decayed == 0.0
