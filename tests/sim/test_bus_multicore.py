"""Tests for the shared bus and the multi-core system model."""

import pytest

from repro.isa import assemble
from repro.sim import (
    CoreConfig,
    DEFAULT_MEMORY_MAP,
    FunctionalSimulator,
    Memory,
    MultiCoreSystem,
    PerfCounters,
    SharedBus,
)


class TestSharedBus:
    def test_uncontended_request_costs_transfer_overhead(self):
        bus = SharedBus(transfer_cycles=2)
        assert bus.request(0, cycle=10, duration=5) == 2

    def test_back_to_back_requests_wait(self):
        bus = SharedBus(transfer_cycles=2)
        bus.request(0, cycle=0, duration=10)
        wait = bus.request(1, cycle=1, duration=10)
        assert wait > 2  # second master waits for the first transaction

    def test_idle_bus_after_gap(self):
        bus = SharedBus(transfer_cycles=1)
        bus.request(0, cycle=0, duration=3)
        assert bus.request(1, cycle=100, duration=3) == 1

    def test_stats(self):
        bus = SharedBus()
        bus.request(0, 0, 4)
        bus.request(1, 0, 4)
        assert bus.stats.requests == 2
        assert bus.stats.per_master_requests == {0: 1, 1: 1}
        assert bus.stats.wait_cycles > 0
        assert bus.stats.average_wait > 0
        assert 0 < bus.stats.utilization(100) <= 1.0

    def test_reset(self):
        bus = SharedBus()
        bus.request(0, 0, 4)
        bus.reset()
        assert bus.stats.requests == 0
        assert bus.request(0, 0, 4) == bus.transfer_cycles


def _make_simulator(iterations):
    source = f"""
        li t0, {iterations}
        li t1, 0
        li t2, 0x10000000
    loop:
        add t1, t1, t0
        sw t1, 0(t2)
        lw t3, 0(t2)
        addi t0, t0, -1
        bnez t0, loop
        li a0, 0
        li a7, 93
        ecall
    """
    mem = Memory(DEFAULT_MEMORY_MAP())
    fsim = FunctionalSimulator(mem)
    fsim.load_program(assemble(source))
    return fsim


class TestMultiCoreSystem:
    def test_single_core_system(self):
        system = MultiCoreSystem([_make_simulator(50)])
        result = system.run()
        assert result.num_cores == 1
        assert result.system_cycles == result.per_core[0].cycles
        assert result.bus.requests == 0

    def test_dual_core_runs_both_programs(self):
        system = MultiCoreSystem([_make_simulator(50), _make_simulator(50)])
        result = system.run()
        assert result.num_cores == 2
        assert all(c.instructions > 100 for c in result.per_core)
        assert result.system_cycles == max(c.cycles for c in result.per_core)

    def test_dual_core_of_half_work_is_faster(self):
        single = MultiCoreSystem([_make_simulator(100)]).run()
        dual = MultiCoreSystem([_make_simulator(50), _make_simulator(50)]).run()
        speedup = dual.speedup_over(single)
        assert 1.2 < speedup <= 2.2

    def test_combined_counters_are_sums(self):
        system = MultiCoreSystem([_make_simulator(30), _make_simulator(30)])
        result = system.run()
        assert result.combined.instructions == sum(c.instructions for c in result.per_core)

    def test_bus_sees_traffic_with_shared_bus(self):
        system = MultiCoreSystem([_make_simulator(30), _make_simulator(30)], shared_bus=True)
        result = system.run()
        assert result.bus.requests > 0

    def test_private_ports_have_no_bus_traffic(self):
        system = MultiCoreSystem([_make_simulator(30), _make_simulator(30)], shared_bus=False)
        result = system.run()
        assert result.bus.requests == 0

    def test_from_builder(self):
        system = MultiCoreSystem.from_builder(2, lambda cid, total: _make_simulator(20 + cid))
        result = system.run()
        assert result.num_cores == 2

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            MultiCoreSystem([])

    def test_summary_keys(self):
        result = MultiCoreSystem([_make_simulator(10)]).run()
        summary = result.summary()
        assert {"num_cores", "system_cycles", "execution_time_s", "ipc_mean"} <= set(summary)

    def test_execution_time_uses_clock(self):
        config = CoreConfig(clock_hz=30e6)
        result = MultiCoreSystem([_make_simulator(10)], core_config=config).run()
        assert result.execution_time_s == pytest.approx(result.system_cycles / 30e6)


class TestPerfCounters:
    def test_merge(self):
        a = PerfCounters(cycles=100, instructions=60, regular_instructions=60)
        b = PerfCounters(cycles=50, instructions=40, regular_instructions=40)
        merged = a.merge(b)
        assert merged.cycles == 150
        assert merged.instructions == 100

    def test_ipc_eff_with_neuron_updates(self):
        c = PerfCounters(cycles=100, instructions=60, regular_instructions=40, neuron_updates=20)
        assert c.ipc == pytest.approx(0.6)
        assert c.ipc_eff == pytest.approx((40 + 20 * 19) / 100)
        assert c.ipc_eff > 1.0

    def test_zero_cycles_is_safe(self):
        c = PerfCounters()
        assert c.ipc == 0.0 and c.ipc_eff == 0.0 and c.hazard_stall_percent == 0.0

    def test_as_dict(self):
        c = PerfCounters(cycles=200, instructions=150, regular_instructions=150)
        d = c.as_dict(clock_hz=1e6)
        assert d["execution_time_s"] == pytest.approx(200 / 1e6)
        assert d["ipc"] == pytest.approx(0.75)
