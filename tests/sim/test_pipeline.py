"""Tests for the cycle-level 3-stage pipeline model."""

import pytest

from repro.isa import assemble
from repro.sim import (
    CacheConfig,
    CoreConfig,
    CycleAccurateCore,
    DEFAULT_MEMORY_MAP,
    FunctionalSimulator,
    HAZARD_EX_PRODUCER,
    HAZARD_LOAD_USE,
    Memory,
)


def make_core(source, *, config=None, origin=0):
    mem = Memory(DEFAULT_MEMORY_MAP())
    fsim = FunctionalSimulator(mem)
    fsim.load_program(assemble(source, origin=origin))
    return CycleAccurateCore(fsim, config)


def perfect_cache_config(**kwargs):
    """A configuration where cache misses cost nothing (isolates other stalls)."""
    fast = CacheConfig(size_bytes=4096, line_bytes=16, associativity=1, miss_penalty=0)
    return CoreConfig(icache=fast, dcache=fast, **kwargs)


LONG_INDEPENDENT = "\n".join(f"    addi x{5 + (i % 3)}, x0, {i % 100}" for i in range(200)) + "\nebreak\n"


class TestBasicTiming:
    def test_counts_instructions(self):
        core = make_core("li a0, 1\nli a1, 2\nadd a2, a0, a1\nebreak")
        counters = core.run()
        assert counters.instructions == 6  # 2 x li (2 words each) + add + ebreak

    def test_ipc_approaches_one_for_independent_alu(self):
        core = make_core(LONG_INDEPENDENT, config=perfect_cache_config())
        counters = core.run()
        assert counters.ipc > 0.9

    def test_cycles_at_least_instructions(self):
        core = make_core(LONG_INDEPENDENT)
        counters = core.run()
        assert counters.cycles >= counters.instructions

    def test_architectural_result_matches_functional(self):
        source = """
            li t0, 10
            li t1, 0
        loop:
            add t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        """
        core = make_core(source)
        core.run()
        assert core.fsim.read_reg(6) == 55

    def test_cycle_budget_enforced(self):
        core = make_core("loop: j loop")
        with pytest.raises(RuntimeError):
            core.run(max_cycles=500)


class TestStallAccounting:
    def test_taken_branches_cost_flush_cycles(self):
        source = """
            li t0, 50
        loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        """
        core = make_core(source, config=perfect_cache_config())
        counters = core.run()
        assert counters.branch_flush_cycles >= 49

    def test_load_use_hazard_stalls(self):
        dependent = """
            li t0, 0x10000000
            li t1, 42
            sw t1, 0(t0)
        """ + "\n".join("    lw t2, 0(t0)\n    addi t3, t2, 1" for _ in range(20)) + "\nebreak"
        core = make_core(dependent, config=perfect_cache_config(hazard_policy=HAZARD_LOAD_USE))
        counters = core.run()
        assert counters.hazard_stall_cycles >= 20

    def test_independent_loads_do_not_stall(self):
        independent = """
            li t0, 0x10000000
            li t1, 42
            sw t1, 0(t0)
        """ + "\n".join("    lw t2, 0(t0)\n    addi t3, t4, 1" for _ in range(20)) + "\nebreak"
        core = make_core(independent, config=perfect_cache_config(hazard_policy=HAZARD_LOAD_USE))
        counters = core.run()
        assert counters.hazard_stall_cycles == 0

    def test_ex_producer_policy_stalls_more(self):
        chained = "li t0, 1\n" + "\n".join("    addi t0, t0, 1" for _ in range(50)) + "\nebreak"
        relaxed = make_core(chained, config=perfect_cache_config(hazard_policy=HAZARD_LOAD_USE)).run()
        strict = make_core(chained, config=perfect_cache_config(hazard_policy=HAZARD_EX_PRODUCER)).run()
        assert strict.hazard_stall_cycles > relaxed.hazard_stall_cycles
        assert strict.cycles > relaxed.cycles

    def test_div_takes_multiple_cycles(self):
        source = "li a0, 100\nli a1, 7\ndiv a2, a0, a1\nebreak"
        fast = make_core(source, config=perfect_cache_config(div_cycles=1)).run()
        slow = make_core(source, config=perfect_cache_config(div_cycles=16)).run()
        assert slow.cycles > fast.cycles
        assert slow.multicycle_stall_cycles >= 15

    def test_icache_miss_penalty_visible(self):
        cheap = perfect_cache_config()
        pricey = CoreConfig(
            icache=CacheConfig(size_bytes=4096, line_bytes=16, miss_penalty=30),
            dcache=CacheConfig(size_bytes=4096, line_bytes=16, miss_penalty=0),
        )
        a = make_core(LONG_INDEPENDENT, config=cheap).run()
        b = make_core(LONG_INDEPENDENT, config=pricey).run()
        assert b.icache_stall_cycles > a.icache_stall_cycles
        assert b.cycles > a.cycles


class TestCounters:
    def test_memory_accesses_counted(self):
        source = """
            li t0, 0x10000000
            li t1, 7
            sw t1, 0(t0)
            lw t2, 0(t0)
            lw t3, 4(t0)
            ebreak
        """
        counters = make_core(source).run()
        assert counters.loads == 2
        assert counters.stores == 1
        assert counters.memory_accesses == 3
        assert counters.memory_intensity == pytest.approx(300 / counters.instructions, rel=1e-6)

    def test_neuromorphic_instructions_counted(self):
        from repro.isa import IzhikevichParams, pack_nmldl_operands

        rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
        source = f"""
            li a6, {rs1}
            li a7, {rs2}
            nmldl x0, a6, a7
            nmldh x0, x0, x0
            li a0, 0
            li a1, 0
            li a2, 0x10000000
            nmpn a2, a0, a1
            li t1, 4
            nmdec a3, t1, a1
            ebreak
        """
        counters = make_core(source).run()
        assert counters.neuron_updates == 1
        assert counters.decay_operations == 1
        assert counters.ipc_eff > counters.ipc  # the update is credited with 19 ops

    def test_cache_stats_attached_after_run(self):
        counters = make_core(LONG_INDEPENDENT).run()
        assert counters.icache.accesses > 0
        # Straight-line code hits 3 out of 4 accesses on a 16-byte line.
        assert counters.icache.hit_rate > 70.0

    def test_looping_code_has_high_icache_hit_rate(self):
        source = """
            li t0, 500
        loop:
            addi t1, t1, 1
            addi t2, t2, 2
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        """
        counters = make_core(source).run()
        assert counters.icache.hit_rate > 99.0

    def test_hazard_percent_derived(self):
        counters = make_core(LONG_INDEPENDENT, config=perfect_cache_config()).run()
        assert counters.hazard_stall_percent == pytest.approx(
            100.0 * counters.hazard_stall_cycles / counters.cycles
        )


class TestHazardPeekTolerance:
    """The hazard unit's lookahead decode must never abort a simulation."""

    def test_hazard_blocks_returns_false_on_data_word(self):
        core = make_core("li t0, 7\nlw t1, 0(t0)\nebreak")
        # Put undecodable data right where a speculative peek could look.
        core.fsim.memory.store_word(0x400, 0xFFFFFFFF)
        producer = core.fsim.step()  # li -> a record with a destination
        assert producer.instr.dest_register is not None
        assert core._hazard_blocks(producer, 0x400) is False   # illegal word
        assert core._hazard_blocks(producer, 0x402) is False   # misaligned
        assert core._hazard_blocks(producer, 0x500) is False   # zero (data)

    def test_load_followed_by_data_image_runs_clean(self):
        # Code immediately followed by a data word that does not decode;
        # the load-use peek beyond the halt boundary must stay silent.
        source = """
            li t0, 0x10000000
            lw t1, 0(t0)
            ebreak
        """
        core = make_core(source)
        end = len(assemble(source).words) * 4
        core.fsim.memory.store_word(end, 0xFFFFFFFF)
        counters = core.run()
        assert counters.instructions == 4  # li expands to 2 words

    def test_hazard_still_detected_for_real_consumers(self):
        # Sanity: the tolerant peek must not swallow genuine load-use stalls.
        source = """
            li t0, 0x10000000
            lw t1, 0(t0)
            add t2, t1, t1
            ebreak
        """
        counters = make_core(source, config=perfect_cache_config()).run()
        assert counters.hazard_stall_cycles >= 1
