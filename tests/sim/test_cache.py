"""Tests for the cache timing model."""

import pytest

from repro.sim import Cache, CacheConfig, default_dcache_config, default_icache_config


class TestConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=4096, line_bytes=16, associativity=2)
        assert cfg.num_sets == 128

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=16, associativity=1)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=4096, line_bytes=24, associativity=1)

    def test_defaults(self):
        assert default_icache_config().associativity == 1
        assert default_dcache_config().associativity == 2


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache(CacheConfig(size_bytes=256, line_bytes=16))
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True
        assert cache.access(0x104) is True  # same line

    def test_different_lines_miss(self):
        cache = Cache(CacheConfig(size_bytes=256, line_bytes=16))
        cache.access(0x100)
        assert cache.access(0x110) is False

    def test_direct_mapped_conflict(self):
        cache = Cache(CacheConfig(size_bytes=64, line_bytes=16, associativity=1))
        cache.access(0x000)
        cache.access(0x040)  # maps to the same set, evicts
        assert cache.access(0x000) is False
        assert cache.stats.evictions >= 1

    def test_two_way_avoids_conflict(self):
        cache = Cache(CacheConfig(size_bytes=128, line_bytes=16, associativity=2))
        cache.access(0x000)
        cache.access(0x040)
        assert cache.access(0x000) is True

    def test_lru_replacement(self):
        cache = Cache(CacheConfig(size_bytes=32, line_bytes=16, associativity=2))
        cache.access(0x00)   # A
        cache.access(0x20)   # B (same set)
        cache.access(0x00)   # touch A -> B is LRU
        cache.access(0x40)   # C evicts B
        assert cache.access(0x00) is True
        assert cache.access(0x20) is False

    def test_write_miss_does_not_allocate_by_default(self):
        cache = Cache(CacheConfig(size_bytes=256, line_bytes=16, write_allocate=False))
        cache.access(0x200, is_write=True)
        assert cache.access(0x200) is False

    def test_write_allocate(self):
        cache = Cache(CacheConfig(size_bytes=256, line_bytes=16, write_allocate=True))
        cache.access(0x200, is_write=True)
        assert cache.access(0x200) is True

    def test_access_cycles(self):
        cache = Cache(CacheConfig(size_bytes=256, line_bytes=16, miss_penalty=9))
        assert cache.access_cycles(0x300) == 9
        assert cache.access_cycles(0x300) == 0

    def test_flush(self):
        cache = Cache(CacheConfig(size_bytes=256, line_bytes=16))
        cache.access(0x100)
        cache.flush()
        assert cache.access(0x100) is False
        assert cache.occupancy == 1

    def test_stats(self):
        cache = Cache(CacheConfig(size_bytes=256, line_bytes=16))
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x0, is_write=True)
        stats = cache.stats
        assert stats.accesses == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.read_accesses == 2
        assert stats.write_accesses == 1
        assert stats.hit_rate == pytest.approx(200 / 3)
        assert stats.miss_rate == pytest.approx(100 / 3)

    def test_empty_stats_hit_rate(self):
        assert Cache().stats.hit_rate == 100.0

    def test_stats_merge(self):
        a = Cache(); b = Cache()
        a.access(0x0); b.access(0x0); b.access(0x0)
        merged = a.stats.merge(b.stats)
        assert merged.accesses == 3
        assert merged.hits == 1

    def test_reset_stats(self):
        cache = Cache()
        cache.access(0x0)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_high_hit_rate_on_loop_footprint(self):
        """A small loop working set entirely fits -> near-perfect hit rate."""
        cache = Cache(default_icache_config())
        for _ in range(100):
            for pc in range(0x0, 0x200, 4):
                cache.access(pc)
        assert cache.stats.hit_rate > 99.0
