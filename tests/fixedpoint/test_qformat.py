"""Unit and property tests for the Q-format fixed-point representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import Overflow, Q4_11, Q7_8, Q15_16, QFormat, Rounding


class TestFormatProperties:
    def test_q7_8_geometry(self):
        assert Q7_8.total_bits == 16
        assert Q7_8.scale == 256
        assert Q7_8.raw_min == -32768
        assert Q7_8.raw_max == 32767

    def test_q4_11_geometry(self):
        assert Q4_11.total_bits == 16
        assert Q4_11.scale == 2048

    def test_q15_16_geometry(self):
        assert Q15_16.total_bits == 32
        assert Q15_16.scale == 65536

    def test_value_range(self):
        assert Q7_8.max_value == pytest.approx(127.99609375)
        assert Q7_8.min_value == pytest.approx(-128.0)
        assert Q7_8.resolution == pytest.approx(1 / 256)

    def test_name(self):
        assert Q7_8.name == "Q7.8"
        assert Q15_16.name == "Q15.16"

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            QFormat(-1, 8)
        with pytest.raises(ValueError):
            QFormat(40, 40)


class TestConversion:
    def test_from_float_exact_values(self):
        assert Q7_8.from_float(1.0) == 256
        assert Q7_8.from_float(-65.0) == -65 * 256
        assert Q4_11.from_float(0.5) == 1024

    def test_from_float_rounding_nearest(self):
        assert Q7_8.from_float(0.001953125) == 1  # rounds 0.5 LSB away from zero
        assert Q7_8.from_float(-0.001953125) == -1

    def test_from_float_floor(self):
        assert Q7_8.from_float(0.0039, rounding=Rounding.FLOOR) == 0
        assert Q7_8.from_float(-0.0001, rounding=Rounding.FLOOR) == -1

    def test_from_float_truncate(self):
        assert Q7_8.from_float(-0.0039, rounding=Rounding.TRUNCATE) == 0

    def test_saturation(self):
        assert Q7_8.from_float(500.0) == Q7_8.raw_max
        assert Q7_8.from_float(-500.0) == Q7_8.raw_min

    def test_wrap_overflow(self):
        wrapped = Q7_8.from_float(128.0, overflow=Overflow.WRAP)
        assert wrapped == Q7_8.wrap(128 * 256)
        assert wrapped < 0

    def test_to_float_roundtrip(self):
        for value in (-65.0, 0.25, 30.0, -13.0, 127.5):
            raw = Q7_8.from_float(value)
            assert Q7_8.to_float(raw) == pytest.approx(value, abs=Q7_8.resolution)

    def test_array_conversion(self):
        values = np.array([-65.0, 0.0, 30.0])
        raw = Q7_8.from_float(values)
        assert isinstance(raw, np.ndarray)
        np.testing.assert_allclose(Q7_8.to_float(raw), values, atol=Q7_8.resolution)

    def test_unsigned_roundtrip(self):
        raw = Q7_8.from_float(-1.0)
        bits = Q7_8.to_unsigned(raw)
        assert bits == 0x10000 + raw
        assert Q7_8.from_unsigned(bits) == raw

    def test_is_representable(self):
        assert Q7_8.is_representable(100.0)
        assert not Q7_8.is_representable(200.0)


class TestFormatConversion:
    def test_upconvert_exact(self):
        raw = Q7_8.from_float(1.5)
        assert Q7_8.convert_raw(raw, Q15_16) == Q15_16.from_float(1.5)

    def test_downconvert_floor(self):
        raw = Q15_16.from_float(1.00390625)  # 1 + 1/256 + extra fractional bits
        down = Q15_16.convert_raw(raw, Q7_8)
        assert Q7_8.to_float(down) == pytest.approx(1.00390625, abs=Q7_8.resolution)

    def test_downconvert_saturates(self):
        raw = Q15_16.from_float(5000.0)
        assert Q15_16.convert_raw(raw, Q7_8) == Q7_8.raw_max


@settings(max_examples=200, deadline=None)
@given(st.floats(min_value=-127.9, max_value=127.9, allow_nan=False))
def test_roundtrip_error_bounded(value):
    """Quantisation error never exceeds half an LSB with nearest rounding."""
    raw = Q7_8.from_float(value)
    assert abs(Q7_8.to_float(raw) - value) <= Q7_8.resolution / 2 + 1e-12


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-(1 << 20), max_value=(1 << 20)))
def test_wrap_is_idempotent(raw):
    once = Q7_8.wrap(raw)
    assert Q7_8.wrap(once) == once
    assert Q7_8.raw_min <= once <= Q7_8.raw_max


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-(1 << 40), max_value=(1 << 40)))
def test_saturate_within_range(raw):
    sat = Q15_16.saturate(raw)
    assert Q15_16.raw_min <= sat <= Q15_16.raw_max
    if Q15_16.raw_min <= raw <= Q15_16.raw_max:
        assert sat == raw
