"""Tests for VU-word packing (the nmpn state word)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import Q7_8, pack_vu, pack_vu_float, unpack_vu, unpack_vu_float


class TestPackUnpack:
    def test_pack_layout(self):
        v_raw = Q7_8.from_float(30.0)
        u_raw = Q7_8.from_float(-13.0)
        word = pack_vu(v_raw, u_raw)
        assert (word >> 16) & 0xFFFF == v_raw
        assert word & 0xFFFF == (u_raw + 0x10000)  # two's complement low half

    def test_roundtrip_scalar(self):
        v_raw = Q7_8.from_float(-65.0)
        u_raw = Q7_8.from_float(-13.0)
        assert unpack_vu(pack_vu(v_raw, u_raw)) == (v_raw, u_raw)

    def test_roundtrip_float(self):
        v, u = unpack_vu_float(pack_vu_float(-65.0, -13.0))
        assert v == pytest.approx(-65.0, abs=Q7_8.resolution)
        assert u == pytest.approx(-13.0, abs=Q7_8.resolution)

    def test_word_is_32bit(self):
        word = pack_vu_float(-128.0, -128.0)
        assert 0 <= word < (1 << 32)

    def test_vectorised(self):
        v = np.asarray(Q7_8.from_float(np.array([-65.0, 30.0, 0.0])))
        u = np.asarray(Q7_8.from_float(np.array([-13.0, 2.0, -1.0])))
        words = pack_vu(v, u)
        v2, u2 = unpack_vu(words)
        np.testing.assert_array_equal(v, v2)
        np.testing.assert_array_equal(u, u2)


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=Q7_8.raw_min, max_value=Q7_8.raw_max),
    st.integers(min_value=Q7_8.raw_min, max_value=Q7_8.raw_max),
)
def test_pack_unpack_is_identity(v_raw, u_raw):
    assert unpack_vu(pack_vu(v_raw, u_raw)) == (v_raw, u_raw)
