"""Tests for the raw fixed-point arithmetic helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixedpoint import (
    Q4_11,
    Q7_8,
    Q15_16,
    align,
    fx_add,
    fx_compare,
    fx_mul,
    fx_neg,
    fx_shift_left,
    fx_shift_right,
    fx_sub,
    requantize,
)


class TestAlign:
    def test_align_up_is_exact(self):
        raw = Q7_8.from_float(2.5)
        assert align(raw, Q7_8, 16) == Q15_16.from_float(2.5)

    def test_align_down_floors(self):
        raw = Q15_16.from_float(0.00001)
        assert align(raw, Q15_16, 8) == 0

    def test_align_preserves_format_when_same(self):
        raw = Q7_8.from_float(-3.0)
        assert align(raw, Q7_8, Q7_8.frac_bits) == raw


class TestArithmetic:
    def test_add_same_format(self):
        a = Q7_8.from_float(1.5)
        b = Q7_8.from_float(2.25)
        assert Q7_8.to_float(fx_add(a, Q7_8, b, Q7_8, Q7_8)) == pytest.approx(3.75)

    def test_add_mixed_formats(self):
        a = Q7_8.from_float(1.5)
        b = Q15_16.from_float(0.25)
        out = fx_add(a, Q7_8, b, Q15_16, Q15_16)
        assert Q15_16.to_float(out) == pytest.approx(1.75)

    def test_sub(self):
        a = Q15_16.from_float(10.0)
        b = Q15_16.from_float(2.5)
        assert Q15_16.to_float(fx_sub(a, Q15_16, b, Q15_16, Q15_16)) == pytest.approx(7.5)

    def test_mul_quantization(self):
        a = Q4_11.from_float(0.2)
        b = Q7_8.from_float(-65.0)
        out = fx_mul(a, Q4_11, b, Q7_8, Q7_8)
        assert Q7_8.to_float(out) == pytest.approx(0.2 * -65.0, abs=0.05)

    def test_mul_saturates(self):
        a = Q7_8.from_float(127.0)
        b = Q7_8.from_float(127.0)
        assert fx_mul(a, Q7_8, b, Q7_8, Q7_8) == Q7_8.raw_max

    def test_neg(self):
        assert fx_neg(Q7_8.from_float(3.0), Q7_8) == Q7_8.from_float(-3.0)
        # Negating the most negative value saturates rather than overflowing.
        assert fx_neg(Q7_8.raw_min, Q7_8) == Q7_8.raw_max

    def test_shifts(self):
        raw = Q15_16.from_float(8.0)
        assert Q15_16.to_float(fx_shift_right(raw, 3)) == pytest.approx(1.0)
        assert Q15_16.to_float(fx_shift_left(Q15_16.from_float(1.0), 3, Q15_16)) == pytest.approx(8.0)

    def test_shift_rejects_negative_amount(self):
        with pytest.raises(ValueError):
            fx_shift_right(100, -1)
        with pytest.raises(ValueError):
            fx_shift_left(100, -2, Q15_16)

    def test_compare(self):
        a = Q7_8.from_float(1.0)
        b = Q15_16.from_float(2.0)
        assert fx_compare(a, Q7_8, b, Q15_16) == -1
        assert fx_compare(b, Q15_16, a, Q7_8) == 1
        assert fx_compare(a, Q7_8, Q15_16.from_float(1.0), Q15_16) == 0

    def test_requantize_matches_convert_raw(self):
        raw = Q15_16.from_float(3.14159)
        assert requantize(raw, Q15_16, Q7_8) == Q15_16.convert_raw(raw, Q7_8)

    def test_vectorised_add(self):
        a = np.asarray(Q7_8.from_float(np.array([1.0, -2.0, 3.0])))
        b = np.asarray(Q7_8.from_float(np.array([0.5, 0.5, 0.5])))
        out = fx_add(a, Q7_8, b, Q7_8, Q7_8)
        np.testing.assert_allclose(Q7_8.to_float(out), [1.5, -1.5, 3.5])


_small_floats = st.floats(min_value=-60.0, max_value=60.0, allow_nan=False)


@settings(max_examples=150, deadline=None)
@given(_small_floats, _small_floats)
def test_add_commutative(x, y):
    a, b = Q7_8.from_float(x), Q7_8.from_float(y)
    assert fx_add(a, Q7_8, b, Q7_8, Q15_16) == fx_add(b, Q7_8, a, Q7_8, Q15_16)


@settings(max_examples=150, deadline=None)
@given(_small_floats, _small_floats)
def test_add_matches_float_within_lsb(x, y):
    a, b = Q7_8.from_float(x), Q7_8.from_float(y)
    out = fx_add(a, Q7_8, b, Q7_8, Q15_16)
    assert Q15_16.to_float(out) == pytest.approx(
        Q7_8.to_float(a) + Q7_8.to_float(b), abs=Q15_16.resolution
    )


@settings(max_examples=150, deadline=None)
@given(st.floats(min_value=-5.0, max_value=5.0), st.floats(min_value=-5.0, max_value=5.0))
def test_mul_sign_correct(x, y):
    a, b = Q4_11.from_float(x), Q4_11.from_float(y)
    out = fx_mul(a, Q4_11, b, Q4_11, Q15_16)
    product = Q4_11.to_float(a) * Q4_11.to_float(b)
    assert Q15_16.to_float(out) == pytest.approx(product, abs=2 * Q15_16.resolution + 1e-9)
