"""Tests for the neuromorphic extension operand packing (paper Table I)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    IzhikevichParams,
    pack_isyn,
    pack_nmldh_operand,
    pack_nmldl_operands,
    unpack_isyn,
    unpack_nmldh_operand,
    unpack_nmldl_operands,
)
from repro.fixedpoint import Q4_11, Q7_8, Q15_16


class TestParams:
    def test_regular_spiking_values(self):
        p = IzhikevichParams.regular_spiking()
        assert (p.a, p.b, p.c, p.d) == (0.02, 0.2, -65.0, 8.0)

    def test_fast_spiking_values(self):
        p = IzhikevichParams.fast_spiking()
        assert p.a == pytest.approx(0.1)
        assert p.d == pytest.approx(2.0)

    def test_quantized_within_lsb(self):
        p = IzhikevichParams.regular_spiking().quantized()
        assert p.a == pytest.approx(0.02, abs=Q4_11.resolution)
        assert p.c == pytest.approx(-65.0, abs=Q7_8.resolution)

    def test_preset_variety(self):
        presets = {
            IzhikevichParams.regular_spiking(),
            IzhikevichParams.fast_spiking(),
            IzhikevichParams.intrinsically_bursting(),
            IzhikevichParams.chattering(),
        }
        assert len(presets) == 4


class TestNmldlPacking:
    def test_field_positions(self):
        p = IzhikevichParams(a=0.02, b=0.2, c=-65.0, d=8.0)
        rs1, rs2 = pack_nmldl_operands(p)
        assert rs1 & 0xFFFF == Q4_11.to_unsigned(Q4_11.from_float(0.02))
        assert (rs1 >> 16) & 0xFFFF == Q4_11.to_unsigned(Q4_11.from_float(0.2))
        assert rs2 & 0xFFFF == Q7_8.to_unsigned(Q7_8.from_float(-65.0))
        assert (rs2 >> 16) & 0xFFFF == Q4_11.to_unsigned(Q4_11.from_float(8.0))

    def test_roundtrip(self):
        p = IzhikevichParams(a=0.1, b=0.25, c=-55.0, d=2.0)
        rs1, rs2 = pack_nmldl_operands(p)
        back = unpack_nmldl_operands(rs1, rs2)
        assert back.a == pytest.approx(0.1, abs=Q4_11.resolution)
        assert back.b == pytest.approx(0.25, abs=Q4_11.resolution)
        assert back.c == pytest.approx(-55.0, abs=Q7_8.resolution)
        assert back.d == pytest.approx(2.0, abs=Q4_11.resolution)

    def test_words_are_32bit(self):
        rs1, rs2 = pack_nmldl_operands(IzhikevichParams(-2.0, -1.0, -65.0, -3.0))
        assert 0 <= rs1 < (1 << 32) and 0 <= rs2 < (1 << 32)


class TestNmldhPacking:
    @pytest.mark.parametrize("fine,pin", [(False, False), (True, False), (False, True), (True, True)])
    def test_roundtrip(self, fine, pin):
        word = pack_nmldh_operand(fine_timestep=fine, pin_voltage=pin)
        assert unpack_nmldh_operand(word) == (fine, pin)

    def test_bit_layout(self):
        assert pack_nmldh_operand(fine_timestep=True, pin_voltage=False) == 0b01
        assert pack_nmldh_operand(fine_timestep=False, pin_voltage=True) == 0b10


class TestIsynPacking:
    def test_roundtrip(self):
        for value in (0.0, 10.0, -5.5, 1000.25):
            assert unpack_isyn(pack_isyn(value)) == pytest.approx(value, abs=Q15_16.resolution)

    def test_negative_is_twos_complement(self):
        word = pack_isyn(-1.0)
        assert word > 0x8000_0000


@settings(max_examples=150, deadline=None)
@given(
    st.floats(min_value=-10, max_value=10),
    st.floats(min_value=-10, max_value=10),
    st.floats(min_value=-120, max_value=120),
    st.floats(min_value=-10, max_value=10),
)
def test_nmldl_roundtrip_property(a, b, c, d):
    rs1, rs2 = pack_nmldl_operands(IzhikevichParams(a, b, c, d))
    back = unpack_nmldl_operands(rs1, rs2)
    assert back.a == pytest.approx(a, abs=Q4_11.resolution)
    assert back.b == pytest.approx(b, abs=Q4_11.resolution)
    assert back.c == pytest.approx(c, abs=Q7_8.resolution)
    assert back.d == pytest.approx(d, abs=Q4_11.resolution)
