"""Tests for the two-pass assembler and disassembler."""

import pytest

from repro.isa import AssemblerError, assemble, decode, disassemble_word
from repro.isa.registers import register_index, register_name


class TestRegisters:
    def test_abi_names(self):
        assert register_index("zero") == 0
        assert register_index("ra") == 1
        assert register_index("sp") == 2
        assert register_index("a0") == 10
        assert register_index("t6") == 31
        assert register_index("fp") == 8

    def test_x_names(self):
        for i in range(32):
            assert register_index(f"x{i}") == i

    def test_register_name_roundtrip(self):
        for i in range(32):
            assert register_index(register_name(i)) == i

    def test_unknown_register(self):
        with pytest.raises(ValueError):
            register_index("q7")


class TestBasicAssembly:
    def test_single_instruction(self):
        prog = assemble("add a0, a1, a2")
        assert len(prog.words) == 1
        assert decode(prog.words[0]).name == "add"

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        # a comment
        addi t0, zero, 5   // trailing comment

        """)
        assert len(prog.words) == 1

    def test_load_store_operands(self):
        prog = assemble("lw a0, 8(sp)\nsw a0, -4(sp)")
        lw, sw = (decode(w) for w in prog.words)
        assert (lw.name, lw.imm, lw.rs1) == ("lw", 8, 2)
        assert (sw.name, sw.imm, sw.rs1) == ("sw", -4, 2)

    def test_labels_and_branches(self):
        prog = assemble("""
        _start:
            addi t0, zero, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        """)
        branch = decode(prog.words[2])
        assert branch.name == "bne"
        assert branch.imm == -4

    def test_forward_branch(self):
        prog = assemble("""
            beq a0, a1, done
            addi a0, a0, 1
        done:
            ebreak
        """)
        assert decode(prog.words[0]).imm == 8

    def test_jal_label(self):
        prog = assemble("""
            j end
            nop
        end:
            ebreak
        """)
        assert decode(prog.words[0]).name == "jal"
        assert decode(prog.words[0]).imm == 8

    def test_li_small_and_large(self):
        prog = assemble("li t0, 5\nli t1, 0x12345678")
        assert len(prog.words) == 4  # each li expands to lui+addi
        # Execute mentally: lui 0 + addi 5
        assert decode(prog.words[0]).name == "lui"
        assert decode(prog.words[1]).imm == 5

    def test_custom_instructions_assemble(self):
        prog = assemble("""
            nmldl x0, a6, a7
            nmldh x0, t0, x0
            nmpn a2, a0, a1
            nmdec a3, t1, a1
        """)
        names = [decode(w).name for w in prog.words]
        assert names == ["nmldl", "nmldh", "nmpn", "nmdec"]

    def test_equ_and_expressions(self):
        prog = assemble("""
        .equ BASE, 0x1000
        .equ OFFSET, 16
            li t0, BASE+OFFSET
            lw t1, OFFSET(t0)
        """)
        assert decode(prog.words[1]).imm == 0x10 + 0  # addi part of li carries low bits
        assert decode(prog.words[2]).imm == 16

    def test_word_directive(self):
        prog = assemble("""
        data:
            .word 0xDEADBEEF, 42
        """)
        assert prog.words[0] == 0xDEADBEEF
        assert prog.words[1] == 42

    def test_origin_and_symbols(self):
        prog = assemble("_start: nop", origin=0x400)
        assert prog.origin == 0x400
        assert prog.entry_point == 0x400
        assert prog.symbols["_start"] == 0x400

    def test_word_at(self):
        prog = assemble("nop\nnop")
        assert prog.word_at(4) == prog.words[1]
        with pytest.raises(IndexError):
            prog.word_at(100)


class TestPseudoInstructions:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("nop", "addi"),
            ("mv a0, a1", "addi"),
            ("not a0, a1", "xori"),
            ("neg a0, a1", "sub"),
            ("seqz a0, a1", "sltiu"),
            ("snez a0, a1", "sltu"),
            ("jr ra", "jalr"),
            ("ret", "jalr"),
        ],
    )
    def test_single_word_pseudos(self, source, expected):
        assert decode(assemble(source).words[0]).name == expected

    def test_branch_pseudos(self):
        prog = assemble("""
        top:
            beqz a0, top
            bnez a1, top
            bgt a2, a3, top
            ble a4, a5, top
        """)
        names = [decode(w).name for w in prog.words]
        assert names == ["beq", "bne", "blt", "bge"]

    def test_bgt_swaps_operands(self):
        instr = decode(assemble("here: bgt a0, a1, here").words[0])
        assert instr.rs1 == register_index("a1")
        assert instr.rs2 == register_index("a0")

    def test_call_uses_ra(self):
        prog = assemble("""
            call fn
            ebreak
        fn:
            ret
        """)
        jal = decode(prog.words[0])
        assert jal.name == "jal" and jal.rd == 1


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("addi a0, a1, 5000")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError):
            assemble("li a0, MISSING")

    def test_branch_out_of_range(self):
        source = "start: nop\n" + "nop\n" * 2000 + "beq a0, a1, start"
        with pytest.raises(AssemblerError):
            assemble(source)


class TestDisassembler:
    @pytest.mark.parametrize(
        "source",
        [
            "add a0, a1, a2",
            "addi t0, t1, -7",
            "lw a0, 12(sp)",
            "sw a1, -8(s0)",
            "lui a0, 0x12345",
            "nmpn a2, a0, a1",
            "nmdec a3, t1, a1",
        ],
    )
    def test_roundtrip_through_text(self, source):
        word = assemble(source).words[0]
        text = disassemble_word(word)
        word2 = assemble(text).words[0]
        assert word == word2

    def test_listing_contains_addresses(self):
        from repro.isa import disassemble

        listing = disassemble(assemble("nop\nnop").words, origin=0x100)
        assert "00000100" in listing and "00000104" in listing
