"""Tests for instruction-word field encoding/decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import encoding as enc


class TestSignExtension:
    def test_positive(self):
        assert enc.sign_extend(0x7FF, 12) == 2047

    def test_negative(self):
        assert enc.sign_extend(0xFFF, 12) == -1
        assert enc.sign_extend(0x800, 12) == -2048

    def test_to_signed32(self):
        assert enc.to_signed32(0xFFFFFFFF) == -1
        assert enc.to_signed32(0x7FFFFFFF) == 0x7FFFFFFF

    def test_to_unsigned32(self):
        assert enc.to_unsigned32(-1) == 0xFFFFFFFF


class TestEncoders:
    def test_r_type_fields(self):
        word = enc.encode_r(0b0110011, rd=1, funct3=0, rs1=2, rs2=3, funct7=0b0100000)
        fields = enc.decode_fields(word)
        assert fields["opcode"] == 0b0110011
        assert fields["rd"] == 1
        assert fields["rs1"] == 2
        assert fields["rs2"] == 3
        assert fields["funct7"] == 0b0100000

    def test_i_type_immediate(self):
        word = enc.encode_i(0b0010011, rd=5, funct3=0, rs1=6, imm=-1)
        assert enc.imm_i(word) == -1

    def test_s_type_immediate(self):
        word = enc.encode_s(0b0100011, funct3=2, rs1=2, rs2=7, imm=-4)
        assert enc.imm_s(word) == -4

    def test_b_type_immediate(self):
        word = enc.encode_b(0b1100011, funct3=0, rs1=1, rs2=2, imm=-8)
        assert enc.imm_b(word) == -8

    def test_b_type_rejects_odd_offset(self):
        with pytest.raises(ValueError):
            enc.encode_b(0b1100011, funct3=0, rs1=1, rs2=2, imm=3)

    def test_u_type_immediate(self):
        word = enc.encode_u(0b0110111, rd=3, imm=0xABCDE)
        assert (enc.imm_u(word) >> 12) & 0xFFFFF == 0xABCDE

    def test_j_type_immediate(self):
        word = enc.encode_j(0b1101111, rd=1, imm=2048)
        assert enc.imm_j(word) == 2048

    def test_j_type_negative(self):
        word = enc.encode_j(0b1101111, rd=0, imm=-4)
        assert enc.imm_j(word) == -4

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            enc.encode_r(0b0110011, rd=32, funct3=0, rs1=0, rs2=0, funct7=0)

    def test_custom0_opcode_value(self):
        assert enc.OPCODE_CUSTOM0 == 0b0001011


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-2048, max_value=2047))
def test_i_immediate_roundtrip(imm):
    word = enc.encode_i(0b0010011, rd=1, funct3=0, rs1=2, imm=imm)
    assert enc.imm_i(word) == imm


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-2048, max_value=2047))
def test_s_immediate_roundtrip(imm):
    word = enc.encode_s(0b0100011, funct3=2, rs1=1, rs2=2, imm=imm)
    assert enc.imm_s(word) == imm


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-2048, max_value=2046).map(lambda x: x & ~1))
def test_b_immediate_roundtrip(imm):
    word = enc.encode_b(0b1100011, funct3=0, rs1=1, rs2=2, imm=imm)
    assert enc.imm_b(word) == imm


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=-(1 << 20) // 2, max_value=(1 << 20) // 2 - 2).map(lambda x: x & ~1))
def test_j_immediate_roundtrip(imm):
    word = enc.encode_j(0b1101111, rd=1, imm=imm)
    assert enc.imm_j(word) == imm
