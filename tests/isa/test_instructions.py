"""Tests for the instruction registry, encoder and decoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    INSTRUCTIONS,
    IllegalInstructionError,
    InstrFormat,
    NM_MNEMONICS,
    decode,
    encode,
    lookup,
)


class TestRegistry:
    def test_rv32i_base_present(self):
        for name in ("add", "sub", "lw", "sw", "beq", "jal", "jalr", "lui", "auipc", "ecall"):
            assert name in INSTRUCTIONS

    def test_rv32m_present(self):
        for name in ("mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu"):
            assert name in INSTRUCTIONS

    def test_custom_instructions_present(self):
        for name in NM_MNEMONICS:
            assert name in INSTRUCTIONS
            assert INSTRUCTIONS[name].opcode == 0b0001011

    def test_lookup_case_insensitive(self):
        assert lookup("ADD") is INSTRUCTIONS["add"]

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup("fld")


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(set(INSTRUCTIONS) - {"ecall", "ebreak", "fence"}))
    def test_encode_decode_roundtrip(self, name):
        spec = INSTRUCTIONS[name]
        kwargs = dict(rd=5, rs1=6, rs2=7, imm=16)
        if spec.fmt is InstrFormat.B or spec.fmt is InstrFormat.J:
            kwargs["imm"] = 16
        word = encode(name, **kwargs)
        decoded = decode(word)
        assert decoded.name == name

    def test_ecall_ebreak_distinguished(self):
        assert decode(encode("ecall")).name == "ecall"
        assert decode(encode("ebreak")).name == "ebreak"

    def test_decode_rejects_garbage(self):
        with pytest.raises(IllegalInstructionError):
            decode(0xFFFFFFFF)
        with pytest.raises(IllegalInstructionError):
            decode(0x0000007F)


class TestOperandViews:
    def test_add_sources_and_dest(self):
        instr = decode(encode("add", rd=3, rs1=1, rs2=2))
        assert instr.source_registers == (1, 2)
        assert instr.dest_register == 3

    def test_x0_excluded(self):
        instr = decode(encode("add", rd=0, rs1=0, rs2=5))
        assert instr.source_registers == (5,)
        assert instr.dest_register is None

    def test_store_has_no_dest(self):
        instr = decode(encode("sw", rs1=2, rs2=7, imm=4))
        assert instr.dest_register is None
        assert instr.is_store
        assert instr.writes_memory

    def test_load_classification(self):
        instr = decode(encode("lw", rd=5, rs1=2, imm=8))
        assert instr.is_load and instr.reads_memory and not instr.is_store

    def test_branch_classification(self):
        instr = decode(encode("bne", rs1=1, rs2=2, imm=8))
        assert instr.is_branch and instr.dest_register is None

    def test_mul_div_classification(self):
        assert decode(encode("mul", rd=1, rs1=2, rs2=3)).is_mul
        assert decode(encode("rem", rd=1, rs1=2, rs2=3)).is_div

    def test_nmpn_reads_rd_as_source(self):
        instr = decode(encode("nmpn", rd=12, rs1=10, rs2=11))
        assert instr.is_neuromorphic
        assert set(instr.source_registers) == {10, 11, 12}
        assert instr.dest_register == 12
        assert instr.writes_memory

    def test_nmldl_is_plain_r_type(self):
        instr = decode(encode("nmldl", rd=1, rs1=2, rs2=3))
        assert instr.fmt is InstrFormat.R
        assert instr.is_neuromorphic
        assert not instr.writes_memory

    def test_custom_funct3_values_distinct(self):
        funct3 = {name: INSTRUCTIONS[name].funct3 for name in NM_MNEMONICS}
        assert len(set(funct3.values())) == 4


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(["add", "sub", "and", "or", "xor", "mul", "div"]),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=31),
)
def test_r_type_roundtrip_fields(name, rd, rs1, rs2):
    decoded = decode(encode(name, rd=rd, rs1=rs1, rs2=rs2))
    assert (decoded.name, decoded.rd, decoded.rs1, decoded.rs2) == (name, rd, rs1, rs2)
