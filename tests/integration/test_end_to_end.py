"""Cross-module integration tests.

These tests tie the whole stack together: generated assembly programs run
on the functional and cycle-level simulators must agree with each other,
with the vectorised fixed-point network engine, and the extension and
base-ISA kernels must be bit-identical — the property on which the paper's
"same results, fewer instructions" argument rests.
"""

import numpy as np
import pytest

from repro.codegen import build_eighty_twenty_workload, build_sudoku_workload
from repro.fixedpoint import Q15_16, unpack_vu
from repro.sim import CycleAccurateCore, MultiCoreSystem
from repro.snn import FixedPointPopulation


class TestExtensionVsBaseline:
    """The custom-instruction and base-ISA programs compute the same thing."""

    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for kind in ("extension", "baseline"):
            wl = build_eighty_twenty_workload(num_neurons=24, num_steps=3, kind=kind, seed=11)
            fsim = wl.make_simulator()
            fsim.run(max_instructions=2_000_000)
            results[kind] = (wl, fsim)
        return results

    def test_vu_words_bit_identical(self, runs):
        vu_ext = runs["extension"][0].read_vu_words(runs["extension"][1])
        vu_bas = runs["baseline"][0].read_vu_words(runs["baseline"][1])
        np.testing.assert_array_equal(vu_ext, vu_bas)

    def test_currents_bit_identical(self, runs):
        cur_ext = runs["extension"][0].read_currents(runs["extension"][1])
        cur_bas = runs["baseline"][0].read_currents(runs["baseline"][1])
        np.testing.assert_array_equal(cur_ext, cur_bas)

    def test_spike_counts_identical(self, runs):
        ext_wl, ext_sim = runs["extension"]
        bas_wl, bas_sim = runs["baseline"]
        assert ext_wl.total_spikes(ext_sim) == bas_wl.total_spikes(bas_sim)

    def test_extension_needs_far_fewer_instructions(self, runs):
        ext_instr = runs["extension"][1].instret
        bas_instr = runs["baseline"][1].instret
        assert bas_instr > 2 * ext_instr


class TestProgramVsVectorisedEngine:
    """The assembly program and the NumPy fixed-point engine agree."""

    def test_vu_trajectory_matches(self):
        num_neurons, num_steps = 16, 3
        wl = build_eighty_twenty_workload(
            num_neurons=num_neurons, num_steps=num_steps, kind="extension", seed=21
        )
        fsim = wl.make_simulator()
        fsim.run(max_instructions=1_000_000)
        vu_program = wl.read_vu_words(fsim)
        v_prog, u_prog = unpack_vu(vu_program)

        # Re-run the same workload with the vectorised engine, mirroring the
        # kernel exactly: one NPU sub-step per 1 ms step, current decayed by
        # the DCU after the update, spike propagation afterwards.
        spec = wl.spec
        population = FixedPointPopulation.from_float_parameters(
            spec.a, spec.b, spec.c, spec.d, h_shift=1
        )
        from repro.snn.fixed_izhikevich import decay_current_raw

        current_raw = np.zeros(num_neurons, dtype=np.int64)
        ext_raw = np.asarray(Q15_16.from_float(spec.external_input), dtype=np.int64)
        weights_raw = np.asarray(Q15_16.from_float(spec.weights), dtype=np.int64)
        for t in range(num_steps):
            total = current_raw + ext_raw[t]
            fired = population.substep(total).astype(bool)
            current_raw = decay_current_raw(total, spec.tau_select, 1)
            if fired.any():
                current_raw = current_raw + weights_raw[:, fired].sum(axis=1)
        np.testing.assert_array_equal(v_prog, population.v_raw)
        np.testing.assert_array_equal(u_prog, population.u_raw)


class TestCycleSimulatorConsistency:
    def test_cycle_and_functional_agree_architecturally(self):
        wl = build_eighty_twenty_workload(num_neurons=16, num_steps=2, kind="extension", seed=5)
        f_only = wl.make_simulator()
        f_only.run(max_instructions=1_000_000)
        core = CycleAccurateCore(wl.make_simulator())
        counters = core.run()
        assert counters.instructions == f_only.instret
        np.testing.assert_array_equal(wl.read_vu_words(core.fsim), wl.read_vu_words(f_only))

    def test_metrics_have_expected_shape(self):
        wl = build_eighty_twenty_workload(num_neurons=32, num_steps=3, kind="extension", seed=6)
        counters = CycleAccurateCore(wl.make_simulator()).run()
        assert 0.3 < counters.ipc < 1.0
        assert counters.ipc_eff > counters.ipc
        assert counters.icache.hit_rate > 95.0
        assert counters.dcache.hit_rate > 80.0
        assert counters.neuron_updates == 32 * 3

    def test_dual_core_speedup_in_expected_band(self):
        def builder(core_id, total):
            return build_eighty_twenty_workload(
                num_neurons=40 // total, num_steps=3, kind="extension", seed=30 + core_id
            ).make_simulator()

        single = MultiCoreSystem.from_builder(1, builder).run()
        dual = MultiCoreSystem.from_builder(2, builder).run()
        speedup = dual.speedup_over(single)
        # Paper: 1.643x on the 80-20 network; accept a generous band.
        assert 1.2 < speedup <= 2.1


class TestSudokuWorkload:
    def test_sudoku_extension_program_runs(self):
        from repro.sudoku import PuzzleGenerator

        puzzle = PuzzleGenerator().generate(seed=3, target_clues=40).puzzle
        wl = build_sudoku_workload(puzzle, num_steps=1, kind="extension", seed=3)
        fsim = wl.make_simulator()
        fsim.run(max_instructions=3_000_000)
        assert fsim.halted
        assert wl.layout.num_neurons == 729
        assert fsim.instret > 729 * 5
