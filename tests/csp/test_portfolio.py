"""Restart-portfolio engine: bit-exactness, scheduling and accounting.

Three contracts are locked down:

* **restarts disabled** — the portfolio loop reproduces fixed-seed
  ``solve_instances`` bit-for-bit (same decode points, same shrink
  timing, same spike counts), so the portfolio is a strict superset of
  the existing engine;
* **every attempt is a standalone solve** — an attempt stacked into a
  half-finished batch (fresh seed, Luby budget, step offset) produces
  exactly the trajectory of ``SpikingCSPSolver(...).solve`` with that
  seed and budget, because attempts carry their own local step counter
  through the compiled portfolio drive;
* **deterministic scheduling** — Luby budgets, attempt seeds and the
  refill order depend only on the portfolio seed and instance indices,
  never on wall clock or slot assignment.
"""

import numpy as np
import pytest

from repro.csp import (
    CSPConfig,
    PortfolioConfig,
    SpikingCSPSolver,
    derive_attempt_seed,
    luby,
    make_instance,
    solve_instances_portfolio,
)
from repro.csp.solver import solve_instances


def _hard_coloring_pool(count=8, *, base=0, num_vertices=12, edge_probability=0.85):
    return [
        make_instance(
            "coloring",
            seed=base + i,
            num_vertices=num_vertices,
            num_colors=3,
            edge_probability=edge_probability,
        )
        for i in range(count)
    ]


class TestLubySequence:
    def test_canonical_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_power_of_two_peaks(self):
        for k in range(1, 8):
            assert luby(2**k - 1) == 2 ** (k - 1)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            luby(0)


class TestAttemptSeeds:
    def test_deterministic_and_distinct(self):
        seeds = {derive_attempt_seed(0, i, k) for i in range(4) for k in range(1, 5)}
        assert len(seeds) == 16
        assert derive_attempt_seed(0, 2, 3) == derive_attempt_seed(0, 2, 3)
        assert derive_attempt_seed(0, 2, 3) != derive_attempt_seed(1, 2, 3)


class TestPortfolioConfig:
    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            PortfolioConfig(schedule="fibonacci")

    def test_rejects_non_drive_variant_keys(self):
        with pytest.raises(ValueError):
            PortfolioConfig(anneal_variants=({"inhibition_weight": -10.0},))

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            PortfolioConfig(base_budget=0)

    def test_luby_budgets(self):
        cfg = PortfolioConfig(schedule="luby", base_budget=100)
        assert [cfg.attempt_budget(k) for k in range(1, 8)] == [100, 100, 200, 100, 100, 200, 400]

    def test_geometric_budgets(self):
        cfg = PortfolioConfig(schedule="geometric", base_budget=100, growth=2.0)
        assert [cfg.attempt_budget(k) for k in range(1, 5)] == [100, 200, 400, 800]

    def test_attempt_config_cycles_variants_from_second_attempt(self):
        base = CSPConfig()
        cfg = PortfolioConfig(anneal_variants=({"noise_sigma": 5.0}, {"anneal_period": 120}))
        assert cfg.attempt_config(base, 1) is base
        assert cfg.attempt_config(base, 2).noise_sigma == 5.0
        assert cfg.attempt_config(base, 3).anneal_period == 120
        assert cfg.attempt_config(base, 4).noise_sigma == 5.0


class TestRestartsDisabledBitIdentity:
    def test_matches_solve_instances_mixed_convergence(self):
        graph, clamps = make_instance("coloring", seed=5, num_vertices=10, num_colors=3)
        instances = [(graph, clamps)] * 6
        seeds = [1, 2, 3, 4, 5, 6]
        fixed = solve_instances(instances, seeds=seeds, max_steps=1200, check_interval=10)
        port = solve_instances_portfolio(
            instances,
            seeds=seeds,
            portfolio=PortfolioConfig(restarts=False),
            max_steps=1200,
            check_interval=10,
        )
        assert len({r.steps for r in fixed}) > 1, "test needs mixed convergence"
        for f, p in zip(fixed, port):
            assert (p.solved, p.steps, p.total_spikes, p.neuron_updates) == (
                f.solved,
                f.steps,
                f.total_spikes,
                f.neuron_updates,
            )
            assert (p.attempts, p.attempt_steps) == (1, (f.steps,))
            np.testing.assert_array_equal(p.values, f.values)
            np.testing.assert_array_equal(p.decided, f.decided)

    def test_matches_solve_instances_when_unsolved(self):
        # Tiny budget: nothing solves, both engines run to max_steps.
        graph, clamps = make_instance("latin", seed=2, n=4, clamp_fraction=0.25)
        instances = [(graph, clamps)] * 2
        fixed = solve_instances(instances, seeds=[3, 4], max_steps=30, check_interval=10)
        port = solve_instances_portfolio(
            instances,
            seeds=[3, 4],
            portfolio=PortfolioConfig(restarts=False),
            max_steps=30,
            check_interval=10,
        )
        for f, p in zip(fixed, port):
            assert not p.solved and p.steps == f.steps == 30
            assert p.total_spikes == f.total_spikes
            np.testing.assert_array_equal(p.values, f.values)

    def test_default_first_attempt_seeds_derive_from_portfolio_seed(self):
        instances = _hard_coloring_pool(3)
        explicit = solve_instances_portfolio(
            instances,
            seeds=[derive_attempt_seed(9, i, 1) for i in range(3)],
            portfolio=PortfolioConfig(restarts=False, seed=9),
            max_steps=400,
        )
        derived = solve_instances_portfolio(
            instances,
            portfolio=PortfolioConfig(restarts=False, seed=9),
            max_steps=400,
        )
        for e, d in zip(explicit, derived):
            assert (e.solved, e.steps, e.total_spikes) == (d.solved, d.steps, d.total_spikes)


class TestRestartRefill:
    def test_restarts_fire_and_attempts_match_standalone_solves(self):
        instances = _hard_coloring_pool(8)
        pcfg = PortfolioConfig(schedule="luby", base_budget=60, seed=123)
        results = solve_instances_portfolio(
            instances, portfolio=pcfg, max_steps=2000, check_interval=10
        )
        assert sum(r.attempts for r in results) > len(results), "expected restarts"
        # Each solved instance's winning attempt reproduces the standalone
        # solve with the derived seed and Luby budget bit-for-bit.
        for i, result in enumerate(results):
            if not result.solved:
                continue
            graph, clamps = instances[i]
            matched = False
            for k in range(1, result.attempts + 1):
                seed = derive_attempt_seed(pcfg.seed, i, k)
                budget = min(pcfg.attempt_budget(k), 2000)
                solo = SpikingCSPSolver(graph, seed=seed).solve(
                    clamps, max_steps=budget, check_interval=10
                )
                if solo.solved and solo.steps == result.steps:
                    np.testing.assert_array_equal(solo.values, result.values)
                    np.testing.assert_array_equal(solo.decided, result.decided)
                    matched = True
                    break
            assert matched, f"instance {i}: no attempt reproduces the portfolio win"

    def test_luby_budgets_emitted_deterministically(self):
        # An unsatisfiable instance (3 all-different variables over a
        # 2-value domain) exhausts every attempt, so the recorded attempt
        # steps are exactly the Luby budgets (the last one truncated at
        # the global budget).
        from repro.csp import ConstraintGraph, Variable

        graph = ConstraintGraph([Variable(n, (1, 2)) for n in "abc"], name="unsat")
        graph.add_all_different(["a", "b", "c"])
        pcfg = PortfolioConfig(schedule="luby", base_budget=50, seed=7, max_parallel=1)
        [result] = solve_instances_portfolio(
            [(graph, {})], portfolio=pcfg, max_steps=330, check_interval=10
        )
        assert not result.solved
        expected = [50 * luby(k) for k in range(1, result.attempts + 1)]
        expected[-1] = 330 - sum(expected[:-1])  # truncated by the global budget
        assert list(result.attempt_steps) == expected
        assert result.neuron_updates == 330 * graph.num_neurons * 2

    def test_deterministic_across_runs(self):
        instances = _hard_coloring_pool(5)
        pcfg = PortfolioConfig(base_budget=50, seed=7)
        a = solve_instances_portfolio(instances, portfolio=pcfg, max_steps=700)
        b = solve_instances_portfolio(instances, portfolio=pcfg, max_steps=700)
        assert [(r.solved, r.steps, r.total_spikes, r.attempt_steps) for r in a] == [
            (r.solved, r.steps, r.total_spikes, r.attempt_steps) for r in b
        ]

    def test_raced_attempts_are_cancelled_and_accounted(self):
        # slots > instances races several attempts per instance from the
        # start; cancelled racers' steps still land in attempt_steps.
        instances = _hard_coloring_pool(2)
        pcfg = PortfolioConfig(schedule="fixed", base_budget=80, seed=1, max_parallel=3)
        results = solve_instances_portfolio(instances, portfolio=pcfg, max_steps=600, slots=6)
        for result in results:
            assert result.attempts == len(result.attempt_steps)
            assert result.neuron_updates == sum(result.attempt_steps) * (
                instances[0][0].num_neurons * 2
            )

    def test_max_attempts_caps_total_work(self):
        graph, clamps = make_instance("latin", seed=2, n=4, clamp_fraction=0.25)
        pcfg = PortfolioConfig(base_budget=40, seed=3, max_attempts=2, max_parallel=1)
        [result] = solve_instances_portfolio(
            [(graph, clamps)], portfolio=pcfg, max_steps=5000, check_interval=10
        )
        assert not result.solved
        assert result.attempts == 2
        assert sum(result.attempt_steps) == 80  # 2 x base_budget << max_steps

    def test_float64_backend(self):
        instances = _hard_coloring_pool(3, num_vertices=10, edge_probability=0.8)
        results = solve_instances_portfolio(
            instances,
            backend="float64",
            portfolio=PortfolioConfig(base_budget=60, seed=9),
            max_steps=600,
        )
        assert len(results) == 3

    def test_anneal_variants_diversify_restarts(self):
        instances = _hard_coloring_pool(4, num_vertices=10, edge_probability=0.8)
        plain = PortfolioConfig(base_budget=40, seed=11, max_parallel=1)
        varied = PortfolioConfig(
            base_budget=40,
            seed=11,
            max_parallel=1,
            anneal_variants=({"noise_sigma": 6.0},),
        )
        a = solve_instances_portfolio(instances, portfolio=plain, max_steps=600)
        b = solve_instances_portfolio(instances, portfolio=varied, max_steps=600)
        # First attempts share seeds and the base config; any instance
        # needing a restart sees a different (diversified) stream.
        diverged = any(
            ra.attempts >= 2 and (ra.steps, ra.total_spikes) != (rb.steps, rb.total_spikes)
            for ra, rb in zip(a, b)
        )
        assert diverged, "variants should change at least one restart trajectory"


class TestEdgeShapes:
    def test_empty_instances(self):
        assert solve_instances_portfolio([]) == []

    def test_zero_step_budget_matches_solve_instances(self):
        graph, clamps = make_instance("coloring", seed=1, num_vertices=8, num_colors=3)
        fixed = solve_instances([(graph, clamps)], seeds=[5], max_steps=0)
        port = solve_instances_portfolio([(graph, clamps)], seeds=[5], max_steps=0)
        for f, p in zip(fixed, port):
            assert (p.solved, p.steps, p.total_spikes, p.neuron_updates) == (
                f.solved,
                f.steps,
                f.total_spikes,
                f.neuron_updates,
            )
            np.testing.assert_array_equal(p.values, f.values)

    def test_mismatched_neuron_counts_rejected(self):
        small = make_instance("coloring", seed=0, num_vertices=6, num_colors=3)
        big = make_instance("coloring", seed=0, num_vertices=9, num_colors=3)
        with pytest.raises(ValueError):
            solve_instances_portfolio([small, big])

    def test_mismatched_seed_count_rejected(self):
        inst = make_instance("coloring", seed=0, num_vertices=6, num_colors=3)
        with pytest.raises(ValueError):
            solve_instances_portfolio([inst, inst], seeds=[1])

    def test_restarts_disabled_with_fewer_slots_still_attempts_every_instance(self):
        # Instances beyond the initial wave must get their one attempt
        # when a slot frees up, not be silently returned unsolved.
        instances = _hard_coloring_pool(4, num_vertices=10, edge_probability=0.7)
        results = solve_instances_portfolio(
            instances,
            portfolio=PortfolioConfig(restarts=False),
            max_steps=1500,
            slots=2,
        )
        assert [r.attempts for r in results] == [1, 1, 1, 1]
        assert sum(r.solved for r in results) >= 3


class TestSolveInstancesDefaultSeeding:
    """Satellite bugfix: per-instance seeds are independent by default."""

    def test_identical_instances_diverge_by_default(self):
        graph, clamps = make_instance("coloring", seed=5, num_vertices=10, num_colors=3)
        results = solve_instances([(graph, clamps)] * 4, max_steps=600, check_interval=10)
        trajectories = {(r.steps, r.total_spikes) for r in results}
        assert len(trajectories) > 1, "default seeds must differ between replicas"

    def test_explicit_shared_seeds_stay_identical(self):
        graph, clamps = make_instance("coloring", seed=5, num_vertices=10, num_colors=3)
        results = solve_instances(
            [(graph, clamps)] * 3, seeds=[7, 7, 7], max_steps=600, check_interval=10
        )
        assert len({(r.steps, r.total_spikes) for r in results}) == 1

    def test_default_matches_derive_task_seed(self):
        from repro.runtime.sweep import derive_task_seed

        graph, clamps = make_instance("coloring", seed=5, num_vertices=10, num_colors=3)
        default = solve_instances([(graph, clamps)] * 3, seed=42, max_steps=400)
        explicit = solve_instances(
            [(graph, clamps)] * 3,
            seeds=[derive_task_seed(42, i) for i in range(3)],
            max_steps=400,
        )
        for d, e in zip(default, explicit):
            assert (d.solved, d.steps, d.total_spikes) == (e.solved, e.steps, e.total_spikes)
            np.testing.assert_array_equal(d.values, e.values)
