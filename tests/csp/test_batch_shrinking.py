"""Batched CSP solving with active-set shrinking vs. sequential solves.

``_run_batch`` drops replicas from the live batch as soon as their
decoded assignment is a solution, so late steps only advance unsolved
instances.  Replicas are independent, so shrinking must not change any
result: every batched solve — mixed convergence times included — has to
reproduce the sequential per-instance solve bit-for-bit (boards, step
counts, spike counts).
"""

import numpy as np

from repro.csp import SpikingCSPSolver, make_instance
from repro.csp.graph import ConstraintGraph
from repro.csp.solver import solve_instances


class TestSolveBatchShrinking:
    def test_mixed_convergence_matches_sequential(self):
        # Different noise seeds converge at different steps, so the batch
        # shrinks several times before the last replica solves.
        graph, clamps = make_instance("coloring", seed=5, num_vertices=10, num_colors=3)
        seeds = [1, 2, 3, 4, 5, 6]
        sequential = [
            SpikingCSPSolver(graph, seed=s).solve(clamps, max_steps=1200, check_interval=10)
            for s in seeds
        ]
        batched = solve_instances(
            [(graph, clamps)] * len(seeds),
            seeds=seeds,
            max_steps=1200,
            check_interval=10,
        )
        assert len({r.steps for r in sequential}) > 1, "test needs mixed convergence"
        for seq, bat in zip(sequential, batched):
            assert bat.solved == seq.solved
            assert bat.steps == seq.steps
            assert bat.total_spikes == seq.total_spikes
            assert bat.neuron_updates == seq.neuron_updates
            np.testing.assert_array_equal(bat.values, seq.values)
            np.testing.assert_array_equal(bat.decided, seq.decided)

    def test_solve_batch_same_graph_matches_sequential(self):
        graph, _ = make_instance("queens", seed=0, n=5)
        solver = SpikingCSPSolver(graph, seed=11)
        clamp_sets = [{}, {"row0": 1}, {"row0": 3}]
        sequential = [
            SpikingCSPSolver(graph, seed=11).solve(c, max_steps=800, check_interval=10)
            for c in clamp_sets
        ]
        batched = solver.solve_batch(clamp_sets, max_steps=800, check_interval=10)
        for seq, bat in zip(sequential, batched):
            assert (bat.solved, bat.steps, bat.total_spikes) == (
                seq.solved,
                seq.steps,
                seq.total_spikes,
            )
            np.testing.assert_array_equal(bat.values, seq.values)

    def test_solve_instances_shares_synapses_per_graph(self, monkeypatch):
        # Identical graph objects must share one synapse build so the
        # batch engine takes its shared-matrix fast path instead of
        # stacking B duplicate CSC structures.
        graph, clamps = make_instance("coloring", seed=3, num_vertices=8, num_colors=3)
        builds = []
        original = ConstraintGraph.build_synapses

        def counting(self, **kwargs):
            builds.append(self)
            return original(self, **kwargs)

        monkeypatch.setattr(ConstraintGraph, "build_synapses", counting)
        solve_instances([(graph, clamps)] * 4, seeds=[1, 2, 3, 4], max_steps=30)
        assert len(builds) == 1

    def test_unsolved_instances_survive_to_max_steps(self):
        # A clamped-down Latin square with a tiny step budget: nothing
        # solves, the batch never shrinks, and results still match.
        graph, clamps = make_instance("latin", seed=2, n=4, clamp_fraction=0.25)
        seeds = [3, 4]
        sequential = [
            SpikingCSPSolver(graph, seed=s).solve(clamps, max_steps=30, check_interval=10)
            for s in seeds
        ]
        batched = solve_instances(
            [(graph, clamps)] * 2, seeds=seeds, max_steps=30, check_interval=10
        )
        for seq, bat in zip(sequential, batched):
            assert bat.steps == seq.steps
            assert bat.solved == seq.solved
            assert bat.total_spikes == seq.total_spikes
            np.testing.assert_array_equal(bat.values, seq.values)
