"""Degenerate-shape guards of the shared batch loop (satellite bugfixes).

``_run_batch`` historically fell through its step loop when
``max_steps=0`` and decoded an all-zero window after allocating the full
batch state; the explicit guards must reproduce those results exactly
without building a batch, and an empty entry list must return ``[]``.
"""

import numpy as np
import pytest

from repro.csp import ConstraintGraph, SpikingCSPSolver, Variable, make_instance
from repro.csp.solver import solve_instances


class TestZeroStepBudget:
    def test_solve_returns_unsolved_zero_steps(self):
        graph, clamps = make_instance("coloring", seed=1, num_vertices=8, num_colors=3)
        result = SpikingCSPSolver(graph, seed=5).solve(clamps, max_steps=0)
        assert not result.solved
        assert result.steps == 0
        assert result.total_spikes == 0
        assert result.neuron_updates == 0
        assert result.attempt_steps == (0,)

    def test_clamped_variables_still_decode(self):
        graph, clamps = make_instance("coloring", seed=1, num_vertices=8, num_colors=3)
        result = SpikingCSPSolver(graph, seed=5).solve(clamps, max_steps=0)
        resolved = graph.resolve_clamps(clamps)
        for vi, value, _ in resolved:
            assert result.decided[vi]
            assert result.values[vi] == value
        free = np.ones(graph.num_variables, dtype=bool)
        free[[vi for vi, _, _ in resolved]] = False
        assert not result.decided[free].any()

    def test_fully_clamped_consistent_instance_counts_as_solved(self):
        # All variables clamped consistently: the empty decode already is
        # a solution, exactly as the fall-through loop reported it.
        graph = ConstraintGraph([Variable(n, (1, 2)) for n in "ab"], name="tiny")
        graph.add_not_equal("a", "b")
        result = SpikingCSPSolver(graph, seed=1).solve({"a": 1, "b": 2}, max_steps=0)
        assert result.solved
        assert result.steps == 0

    def test_negative_budget_behaves_like_zero(self):
        graph, clamps = make_instance("coloring", seed=1, num_vertices=8, num_colors=3)
        zero = SpikingCSPSolver(graph, seed=5).solve(clamps, max_steps=0)
        negative = SpikingCSPSolver(graph, seed=5).solve(clamps, max_steps=-3)
        assert (negative.solved, negative.steps) == (zero.solved, zero.steps)
        np.testing.assert_array_equal(negative.values, zero.values)

    def test_no_batch_state_allocated(self, monkeypatch):
        import repro.runtime.batch as batch_mod

        def boom(*args, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("batch must not be built for max_steps=0")

        monkeypatch.setattr(batch_mod.BatchedNetwork, "from_networks", classmethod(boom))
        graph, clamps = make_instance("coloring", seed=1, num_vertices=8, num_colors=3)
        SpikingCSPSolver(graph, seed=5).solve(clamps, max_steps=0)

    def test_solve_batch_zero_budget(self):
        graph, _ = make_instance("queens", seed=0, n=5)
        results = SpikingCSPSolver(graph, seed=11).solve_batch([{}, {"row0": 1}], max_steps=0)
        assert [r.steps for r in results] == [0, 0]
        assert all(not r.solved for r in results)


class TestEmptyEntries:
    def test_solve_instances_empty(self):
        assert solve_instances([]) == []

    def test_solve_batch_empty(self):
        graph, _ = make_instance("queens", seed=0, n=5)
        assert SpikingCSPSolver(graph, seed=11).solve_batch([]) == []

    def test_empty_list_never_builds_a_batch(self, monkeypatch):
        import repro.runtime.batch as batch_mod

        def boom(*args, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("batch must not be built for empty entries")

        monkeypatch.setattr(batch_mod.BatchedNetwork, "from_networks", classmethod(boom))
        assert solve_instances([]) == []


class TestPositiveBudgetUnaffected:
    def test_one_step_budget_still_runs(self):
        graph, clamps = make_instance("coloring", seed=1, num_vertices=8, num_colors=3)
        result = SpikingCSPSolver(graph, seed=5).solve(clamps, max_steps=1)
        assert result.steps == 1
        assert result.neuron_updates == graph.num_neurons * 2

    @pytest.mark.parametrize("max_steps", [5, 10, 17])
    def test_non_interval_budgets_decode_at_the_end(self, max_steps):
        graph, clamps = make_instance("coloring", seed=1, num_vertices=8, num_colors=3)
        result = SpikingCSPSolver(graph, seed=5).solve(
            clamps, max_steps=max_steps, check_interval=10
        )
        assert result.steps <= max_steps
