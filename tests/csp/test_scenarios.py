"""Scenario generators and end-to-end solves through the batched runtime."""

import numpy as np
import pytest

from repro.csp import CSPConfig, SpikingCSPSolver, available_scenarios, make_instance
from repro.csp.scenarios.coloring import (
    AUSTRALIA_EDGES,
    australia_instance,
    random_coloring_instance,
)
from repro.csp.scenarios.latin import latin_instance, random_latin_square
from repro.csp.scenarios.queens import queens_graph, queens_instance
from repro.csp.solver import solve_instances


class TestRegistry:
    def test_scenarios_registered(self):
        assert {"coloring", "australia", "queens", "latin", "sudoku"} <= set(available_scenarios())

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            make_instance("tsp")

    def test_instances_are_deterministic(self):
        for scenario, params in [
            ("coloring", {"num_vertices": 8, "num_colors": 3}),
            ("queens", {"n": 5}),
            ("latin", {"n": 4}),
        ]:
            g1, c1 = make_instance(scenario, seed=5, **params)
            g2, c2 = make_instance(scenario, seed=5, **params)
            assert c1 == c2
            assert g1.num_neurons == g2.num_neurons
            for idx in range(g1.num_neurons):
                assert g1.conflicting_neurons(idx) == g2.conflicting_neurons(idx)

    def test_coloring_seeds_vary_structure(self):
        g1, _ = make_instance("coloring", seed=0, num_vertices=10, num_colors=3)
        g2, _ = make_instance("coloring", seed=1, num_vertices=10, num_colors=3)
        assert (
            g1.statistics().num_conflict_edges != g2.statistics().num_conflict_edges
            or any(
                g1.conflicting_neurons(i) != g2.conflicting_neurons(i)
                for i in range(g1.num_neurons)
            )
        )


class TestColoring:
    def test_planted_partition_is_a_solution(self):
        rng = np.random.default_rng(3)
        graph, clamps = random_coloring_instance(10, 3, seed=3)
        # Reconstruct the planted groups exactly as the generator does.
        order = rng.permutation(10)
        group = np.empty(10, dtype=np.int64)
        group[order] = np.arange(10) % 3
        values = group + 1
        decided = np.ones(10, dtype=bool)
        assert graph.is_solution(values, decided)
        # The symmetry-breaking clamp agrees with the planted witness.
        ((name, value),) = clamps.items()
        assert value == int(values[int(name[1:])])

    def test_australia_structure(self):
        graph, clamps = australia_instance()
        assert graph.num_variables == 7
        assert graph.num_neurons == 21
        assert graph.statistics().num_conflict_edges == 2 * 3 * len(AUSTRALIA_EDGES)
        assert graph.clamps_consistent(clamps)


class TestQueens:
    def test_known_solution_accepted(self):
        graph = queens_graph(6)
        solution = np.asarray([2, 4, 6, 1, 3, 5])  # a classic 6-queens solution
        assert graph.is_solution(solution, np.ones(6, dtype=bool))

    def test_attacking_placement_rejected(self):
        graph = queens_graph(6)
        same_column = np.asarray([1, 1, 6, 2, 5, 3])
        diagonal = np.asarray([1, 2, 6, 3, 5, 4])  # rows 0/1 on a diagonal
        assert not graph.is_solution(same_column, np.ones(6, dtype=bool))
        assert not graph.is_solution(diagonal, np.ones(6, dtype=bool))

    def test_instance_has_no_clamps(self):
        graph, clamps = queens_instance(5, seed=2)
        assert clamps == {}
        assert graph.num_neurons == 25


class TestLatin:
    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_random_latin_square_property(self, n):
        square = random_latin_square(n, seed=11)
        expected = set(range(1, n + 1))
        for i in range(n):
            assert set(square[i, :]) == expected
            assert set(square[:, i]) == expected

    def test_completion_instance_is_satisfiable(self):
        graph, clamps = latin_instance(4, seed=9, clamp_fraction=0.4)
        assert graph.clamps_consistent(clamps)
        assert len(clamps) == max(1, int(0.4 * 16))
        # The source square is a witness solution.
        square = random_latin_square(4, seed=9)
        values = square.ravel()
        assert graph.is_solution(values, np.ones(16, dtype=bool))


class TestSolves:
    """Deterministic solve-rate assertions through the batched runtime.

    The instance seeds, solver seeds and step budgets below were verified
    to converge on the fixed-point backend; they are deterministic, so
    these assertions are exact, not statistical.
    """

    def test_australia_solves(self):
        graph, clamps = australia_instance()
        results = SpikingCSPSolver(graph, seed=1).solve_batch(
            [clamps] * 2, max_steps=1000, check_interval=10
        )
        assert all(r.solved for r in results)
        for result in results:
            assert graph.is_solution(result.values, result.decided)

    def test_latin_completion_solves(self):
        instances = [make_instance("latin", n=4, seed=s) for s in range(3)]
        results = solve_instances(instances, seeds=[7, 7, 7], max_steps=2000)
        assert sum(r.solved for r in results) == 3

    @pytest.mark.slow
    def test_queens_solves(self):
        graph, clamps = queens_instance(6)
        results = SpikingCSPSolver(graph, seed=2).solve_batch(
            [clamps] * 2, max_steps=3000, check_interval=10
        )
        assert all(r.solved for r in results)
        for result in results:
            assert graph.is_solution(result.values, result.decided)

    @pytest.mark.slow
    def test_coloring_solves(self):
        instances = [make_instance("coloring", seed=s) for s in range(3)]
        results = solve_instances(instances, seeds=[1, 1, 1], max_steps=4000)
        assert sum(r.solved for r in results) >= 2
        for (graph, _), result in zip(instances, results):
            if result.solved:
                assert graph.is_solution(result.values, result.decided)

    def test_batch_is_bit_identical_to_sequential(self):
        instances = [make_instance("latin", n=4, seed=s) for s in range(2)]
        batched = solve_instances(instances, seeds=[7, 7], max_steps=400)
        for (graph, clamps), batch_result in zip(instances, batched):
            solo = SpikingCSPSolver(graph, seed=7).solve(clamps, max_steps=400)
            assert np.array_equal(solo.values, batch_result.values)
            assert np.array_equal(solo.decided, batch_result.decided)
            assert solo.total_spikes == batch_result.total_spikes
            assert solo.steps == batch_result.steps
            assert solo.solved == batch_result.solved

    def test_solver_rejects_unknown_backend(self):
        graph, _ = australia_instance()
        with pytest.raises(ValueError):
            SpikingCSPSolver(graph, backend="analog")

    def test_solver_rejects_inconsistent_clamps(self):
        graph, _ = australia_instance()
        with pytest.raises(ValueError):
            SpikingCSPSolver(graph, seed=1).solve({"SA": 1, "NSW": 1})

    def test_solve_instances_validates_sizes_and_seeds(self):
        small = australia_instance()
        big = make_instance("latin", n=4, seed=0)
        with pytest.raises(ValueError):
            solve_instances([small, big])
        with pytest.raises(ValueError):
            solve_instances([small, small], seeds=[1])

    def test_empty_batches(self):
        graph, _ = australia_instance()
        assert SpikingCSPSolver(graph).solve_batch([]) == []
        assert solve_instances([]) == []

    def test_float64_backend_runs(self):
        graph, clamps = australia_instance()
        config = CSPConfig()
        with np.errstate(over="ignore", invalid="ignore"):
            result = SpikingCSPSolver(graph, config, backend="float64", seed=1).solve(
                clamps, max_steps=100, check_interval=10
            )
        assert result.steps <= 100
        assert result.neuron_updates == result.steps * graph.num_neurons
