"""Property and unit tests for the generic constraint graph."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.csp import ConstraintGraph, Variable


def _random_graph(num_vars, domain_sizes, edge_seed=0, edge_count=0):
    variables = [
        Variable(f"x{i}", tuple(range(1, size + 1)))
        for i, size in enumerate(domain_sizes)
    ]
    graph = ConstraintGraph(variables, name="random")
    rng = np.random.default_rng(edge_seed)
    added = 0
    while added < edge_count:
        a, b = rng.integers(0, num_vars, size=2)
        if a == b:
            continue
        va = int(rng.integers(1, domain_sizes[a] + 1))
        vb = int(rng.integers(1, domain_sizes[b] + 1))
        graph.add_conflict(int(a), va, int(b), vb)
        added += 1
    return graph


#: Strategy: 2..6 variables with ragged domain sizes 1..5.
_domain_sizes = st.lists(st.integers(min_value=1, max_value=5), min_size=2, max_size=6)


class TestIndexing:
    @given(_domain_sizes)
    @settings(max_examples=50, deadline=None)
    def test_index_coordinate_bijection(self, sizes):
        graph = _random_graph(len(sizes), sizes)
        seen = set()
        for vi, var in enumerate(graph.variables):
            for value in var.domain:
                idx = graph.neuron_index(vi, value)
                assert 0 <= idx < graph.num_neurons
                assert idx not in seen
                seen.add(idx)
                assert graph.neuron_coordinates(idx) == (vi, value)
        # The map is onto: every neuron index is hit exactly once.
        assert len(seen) == graph.num_neurons == sum(sizes)

    def test_variables_are_contiguous_and_ordered(self):
        graph = _random_graph(3, [2, 3, 4])
        assert list(graph.offsets) == [0, 2, 5, 9]
        assert graph.neuron_index("x1", 1) == 2
        assert graph.neuron_index("x2", 4) == 8

    def test_lookup_errors(self):
        graph = _random_graph(2, [2, 2])
        with pytest.raises(KeyError):
            graph.variable_index("nope")
        with pytest.raises(IndexError):
            graph.variable_index(5)
        with pytest.raises(ValueError):
            graph.neuron_index("x0", 99)
        with pytest.raises(ValueError):
            graph.neuron_coordinates(graph.num_neurons)

    def test_duplicate_variable_names_rejected(self):
        with pytest.raises(ValueError):
            ConstraintGraph([Variable("x", (1,)), Variable("x", (1, 2))])

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Variable("x", ())


class TestConflicts:
    @given(
        _domain_sizes,
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_conflicts_are_symmetric(self, sizes, edge_seed, edge_count):
        graph = _random_graph(len(sizes), sizes, edge_seed=edge_seed, edge_count=edge_count)
        for idx in range(graph.num_neurons):
            for target in graph.conflicting_neurons(idx):
                assert idx in graph.conflicting_neurons(target)
                assert target != idx

    @given(_domain_sizes)
    @settings(max_examples=25, deadline=None)
    def test_one_hot_mutex_is_implicit(self, sizes):
        graph = _random_graph(len(sizes), sizes)
        for vi, var in enumerate(graph.variables):
            for value in var.domain:
                idx = graph.neuron_index(vi, value)
                siblings = {graph.neuron_index(vi, other) for other in var.domain if other != value}
                assert siblings <= set(graph.conflicting_neurons(idx))

    def test_intra_variable_conflict_rejected(self):
        graph = _random_graph(2, [3, 3])
        with pytest.raises(ValueError):
            graph.add_conflict("x0", 1, "x0", 2)

    def test_not_equal_covers_shared_values(self):
        graph = ConstraintGraph([Variable("a", (1, 2, 3)), Variable("b", (2, 3, 4))])
        graph.add_not_equal("a", "b")
        # Shared values 2 and 3 conflict; 1 and 4 have no partner.
        assert graph.neuron_index("b", 2) in graph.conflicting_neurons(graph.neuron_index("a", 2))
        assert graph.neuron_index("b", 3) in graph.conflicting_neurons(graph.neuron_index("a", 3))
        explicit_of_a1 = [
            t
            for t in graph.conflicting_neurons(graph.neuron_index("a", 1))
            if graph.neuron_coordinates(t)[0] != 0
        ]
        assert explicit_of_a1 == []

    def test_statistics(self):
        graph = ConstraintGraph([Variable("a", (1, 2)), Variable("b", (1, 2))])
        graph.add_not_equal("a", "b")
        stats = graph.statistics()
        assert stats.num_variables == 2
        assert stats.num_neurons == 4
        assert stats.num_conflict_edges == 4  # 2 values x 2 directions
        assert stats.num_mutex_edges == 4
        assert stats.max_out_degree == 2
        assert stats.mean_out_degree == 2.0


class TestSynapses:
    def test_matrix_shape_and_weights(self):
        graph = ConstraintGraph([Variable("a", (1, 2)), Variable("b", (1, 2))])
        graph.add_not_equal("a", "b")
        syn = graph.build_synapses(inhibition_weight=-5.0, self_excitation=0.5)
        assert syn.matrix.shape == (4, 4)
        dense = syn.matrix.toarray()
        np.testing.assert_allclose(np.diag(dense), 0.5)
        # Every conflict contributes exactly one -5 in each direction.
        assert (dense == -5.0).sum() == 4 + 4  # explicit + mutex edges
        # Self-excitation entries survive at weight 0 (structure preserved).
        syn0 = graph.build_synapses(inhibition_weight=-5.0, self_excitation=0.0)
        assert syn0.num_synapses == syn.num_synapses

    def test_propagation_matches_manual_sum(self):
        graph = _random_graph(3, [3, 2, 4], edge_seed=3, edge_count=10)
        syn = graph.build_synapses(inhibition_weight=-2.0, self_excitation=1.0)
        rng = np.random.default_rng(0)
        fired = rng.random(graph.num_neurons) < 0.4
        out = syn.propagate(fired)
        dense = syn.matrix.toarray()
        np.testing.assert_allclose(out, dense @ fired.astype(np.float64))


class TestClampsAndSolutions:
    def _graph(self):
        graph = ConstraintGraph(
            [Variable("a", (1, 2)), Variable("b", (1, 2)), Variable("c", (1, 2))]
        )
        graph.add_not_equal("a", "b")
        graph.add_not_equal("b", "c")
        return graph

    def test_resolve_clamps_roundtrip(self):
        graph = self._graph()
        resolved = graph.resolve_clamps({"a": 1, "c": 2})
        assert resolved == graph.resolve_clamps(resolved)
        assert [(vi, value) for vi, value, _ in resolved] == [(0, 1), (2, 2)]

    def test_resolved_output_takes_the_fast_path(self):
        graph = self._graph()
        resolved = graph.resolve_clamps({"a": 1, "c": 2})
        # The method's own (validated) output is returned as-is.
        assert graph.resolve_clamps(resolved) is resolved

    def test_conflicting_double_clamp_rejected(self):
        graph = self._graph()
        with pytest.raises(ValueError):
            graph.resolve_clamps([("a", 1), ("a", 2)])

    def test_plain_triple_lists_are_still_validated(self):
        # A hand-built list of 3-tuples must not ride the resolved-output
        # shortcut: conflicting duplicates are rejected and name refs
        # plus stale neuron indices are re-resolved, exactly as pre-PR.
        graph = self._graph()
        with pytest.raises(ValueError):
            graph.resolve_clamps([(0, 2, 1), (0, 1, 0)])
        resolved = graph.resolve_clamps([("a", 1, 999)])
        assert resolved == [(0, 1, graph.neuron_index("a", 1))]

    def test_clamps_consistency(self):
        graph = self._graph()
        assert graph.clamps_consistent({"a": 1, "b": 2})
        assert not graph.clamps_consistent({"a": 1, "b": 1})

    def test_drive_vector_silences_clamped_siblings(self):
        graph = self._graph()
        drive = graph.drive_vector({"b": 2}, clamp_drive=10.0, free_bias=3.0)
        assert drive[graph.neuron_index("b", 2)] == 10.0
        assert drive[graph.neuron_index("b", 1)] == 0.0
        assert drive[graph.neuron_index("a", 1)] == 3.0

    def test_is_solution(self):
        graph = self._graph()
        good = np.asarray([1, 2, 1])
        bad = np.asarray([1, 1, 2])
        all_decided = np.ones(3, dtype=bool)
        assert graph.is_solution(good, all_decided)
        assert not graph.is_solution(bad, all_decided)
        assert not graph.is_solution(good, np.asarray([True, True, False]))

    def test_assignment_dict(self):
        graph = self._graph()
        values = np.asarray([1, 2, 0])
        decided = np.asarray([True, True, False])
        assert graph.assignment_dict(values, decided) == {"a": 1, "b": 2}
