"""Equivalence suite: the refactored Sudoku adapter vs. pre-refactor results.

Two layers of protection:

* **structural** — the generic constraint-graph construction reproduces
  the historical hand-rolled WTA synapse matrix and decode *exactly*
  (the legacy builders are inlined here verbatim, so this comparison
  stays valid even though the production code now delegates);
* **behavioural** — golden results captured from the pre-refactor
  ``SNNSudokuSolver`` (boards, step counts, spike counts for fixed and
  float64 backends, sequential and batched paths) must be reproduced
  bit-identically by the adapter.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.csp import SpikingCSPSolver, decode_assignment
from repro.csp.scenarios.sudoku import clamps_from_cells, shared_sudoku_graph, sudoku_graph
from repro.sudoku import (
    EXAMPLE_PUZZLE,
    SNNSudokuSolver,
    SudokuBoard,
    WTAConfig,
    build_wta_synapses,
    conflicting_neurons,
    neuron_index,
)
from repro.sudoku.puzzles import PuzzleGenerator
from repro.sudoku.wta import GRID, NUM_NEURONS


# ---------------------------------------------------------------------- #
# Inlined pre-refactor constructions (kept verbatim as the reference)
# ---------------------------------------------------------------------- #
def _legacy_build_wta_synapses(cfg):
    rows, cols, vals = [], [], []
    for row in range(GRID):
        for col in range(GRID):
            for digit in range(1, GRID + 1):
                pre = neuron_index(row, col, digit)
                for post in conflicting_neurons(row, col, digit):
                    rows.append(post)
                    cols.append(pre)
                    vals.append(cfg.inhibition_weight)
                rows.append(pre)
                cols.append(pre)
                vals.append(cfg.self_excitation)
    return sparse.csc_matrix(
        sparse.coo_matrix((vals, (rows, cols)), shape=(NUM_NEURONS, NUM_NEURONS)),
        dtype=np.float64,
    )


def _legacy_decode(window_counts, last_spike_step, puzzle):
    grid = np.zeros((GRID, GRID), dtype=np.int64)
    counts = window_counts.reshape(GRID, GRID, GRID).astype(np.float64)
    recency = last_spike_step.reshape(GRID, GRID, GRID).astype(np.float64)
    score = counts + recency / (recency.max() + 1.0) if recency.max() > 0 else counts
    decided = counts.max(axis=2) > 0
    winners = score.argmax(axis=2) + 1
    grid[decided] = winners[decided]
    clue_mask = puzzle.cells > 0
    grid[clue_mask] = puzzle.cells[clue_mask]
    return SudokuBoard(grid)


#: Golden results captured from the pre-refactor solver (commit efaa5e8).
GOLDEN = {
    "short_fixed_seed1": {
        "solved": False,
        "steps": 60,
        "total_spikes": 1082,
        "board": "531678942647195838.9834.167815764..34.68537217.3.2149616953728427.4193.5354682679",
    },
    "short_float64_seed2": {
        "solved": False,
        "steps": 50,
        "total_spikes": 14724,
        "board": "537171111617195237198311761871261223471823121772121126361117281727419215737181379",
    },
    "full_fixed_seed3": {
        "solved": True,
        "steps": 415,
        "total_spikes": 7758,
        "board": "534678912672195348198342567859761423426853791713924856961537284287419635345286179",
        "matches_reference": True,
    },
    "batch_fixed_seed7": [
        {
            "solved": False,
            "steps": 1500,
            "total_spikes": 29287,
            "board": "85326.947264789153791534682372956814918342576546817329137498265485623791629.71438",
        },
        {
            "solved": True,
            "steps": 1250,
            "total_spikes": 24309,
            "board": "293748516147365298865129437781632945936574821452891673579416382614283759328957164",
        },
    ],
}


class TestStructuralEquivalence:
    def test_graph_indexing_matches_wta_convention(self):
        graph = sudoku_graph()
        assert graph.num_neurons == NUM_NEURONS
        for row in (0, 4, 8):
            for col in (0, 3, 8):
                for digit in (1, 5, 9):
                    assert (
                        graph.neuron_index(f"cell({row},{col})", digit)
                        == neuron_index(row, col, digit)
                    )

    def test_conflict_sets_match_figure4(self):
        graph = shared_sudoku_graph()
        for idx in (0, 100, 364, 500, 728):
            row, rest = divmod(idx, GRID * GRID)
            col, digit0 = divmod(rest, GRID)
            assert graph.conflicting_neurons(idx) == conflicting_neurons(row, col, digit0 + 1)

    @pytest.mark.parametrize(
        "cfg", [WTAConfig(), WTAConfig(inhibition_weight=-12.5, self_excitation=0.75)]
    )
    def test_synapse_matrix_bit_identical(self, cfg):
        legacy = _legacy_build_wta_synapses(cfg)
        refactored = build_wta_synapses(cfg).matrix
        assert legacy.shape == refactored.shape
        assert legacy.nnz == refactored.nnz == NUM_NEURONS * 28 + NUM_NEURONS
        assert (legacy != refactored).nnz == 0
        assert np.array_equal(legacy.toarray(), refactored.toarray())

    def test_decode_bit_identical_on_random_activity(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        rng = np.random.default_rng(42)
        for _ in range(10):
            counts = rng.integers(0, 5, size=NUM_NEURONS)
            last = rng.integers(-1, 300, size=NUM_NEURONS)
            legacy = _legacy_decode(counts, last, puzzle)
            refactored = SNNSudokuSolver.decode(counts, last, puzzle)
            assert np.array_equal(legacy.cells, refactored.cells)

    def test_drive_vector_matches_clue_construction(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        cfg = WTAConfig()
        drive = SNNSudokuSolver()._drive_vector(puzzle)
        expected = np.full(NUM_NEURONS, cfg.free_bias, dtype=np.float64)
        for row, col, digit in puzzle.clue_positions():
            for d in range(1, GRID + 1):
                expected[neuron_index(row, col, d)] = 0.0
            expected[neuron_index(row, col, digit)] = cfg.clue_drive
        assert np.array_equal(drive, expected)


class TestGoldenResults:
    def _check(self, result, golden):
        assert result.board.to_string() == golden["board"]
        assert result.total_spikes == golden["total_spikes"]
        assert result.steps == golden["steps"]
        assert result.solved == golden["solved"]

    def test_short_fixed_run_matches_golden(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        result = SNNSudokuSolver(seed=1).solve(puzzle, max_steps=60, check_interval=20)
        self._check(result, GOLDEN["short_fixed_seed1"])

    def test_short_float64_run_matches_golden(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        with np.errstate(over="ignore", invalid="ignore"):
            result = SNNSudokuSolver(seed=2, backend="float64").solve(
                puzzle, max_steps=50, check_interval=10
            )
        self._check(result, GOLDEN["short_float64_seed2"])

    @pytest.mark.slow
    def test_full_fixed_solve_matches_golden(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        result = SNNSudokuSolver(seed=3).solve(
            puzzle, max_steps=4000, check_interval=5, verify_against_reference=True
        )
        self._check(result, GOLDEN["full_fixed_seed3"])
        assert result.matches_reference == GOLDEN["full_fixed_seed3"]["matches_reference"]

    @pytest.mark.slow
    def test_batch_matches_golden(self):
        generator = PuzzleGenerator()
        puzzles = [generator.generate(seed=1000 + i, target_clues=32).puzzle for i in range(2)]
        results = SNNSudokuSolver().solve_batch(puzzles, max_steps=1500, check_interval=10)
        for result, golden in zip(results, GOLDEN["batch_fixed_seed7"]):
            self._check(result, golden)


class TestAdapterDelegation:
    def test_generic_solver_and_adapter_agree(self):
        """The adapter and a hand-built SpikingCSPSolver are interchangeable."""
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        clamps = clamps_from_cells(puzzle.cells)
        generic = SpikingCSPSolver(shared_sudoku_graph(), seed=1).solve(
            clamps, max_steps=60, check_interval=20
        )
        adapted = SNNSudokuSolver(seed=1).solve(puzzle, max_steps=60, check_interval=20)
        assert np.array_equal(generic.values.reshape(GRID, GRID), adapted.board.cells)
        assert generic.total_spikes == adapted.total_spikes
        assert generic.steps == adapted.steps
        assert generic.solved == adapted.solved

    def test_decode_assignment_forces_clamps(self):
        graph = shared_sudoku_graph()
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        counts = np.zeros(NUM_NEURONS, dtype=np.int64)
        last = np.full(NUM_NEURONS, -1, dtype=np.int64)
        values, decided = decode_assignment(graph, counts, last, clamps_from_cells(puzzle.cells))
        assert int(decided.sum()) == puzzle.num_clues
        board = SudokuBoard(values.reshape(GRID, GRID))
        assert board.respects_clues(puzzle)
