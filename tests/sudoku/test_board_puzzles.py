"""Tests for the Sudoku board, the backtracking solver and puzzle generation."""

import numpy as np
import pytest

from repro.sudoku import (
    BacktrackingSolver,
    EXAMPLE_PUZZLE,
    PuzzleGenerator,
    SudokuBoard,
    generate_puzzle_set,
)


class TestBoard:
    def test_from_string_and_back(self):
        board = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        assert board.num_clues == 30
        assert board.to_string().count(".") == 81 - 30

    def test_dots_accepted(self):
        board = SudokuBoard.from_string("." * 81)
        assert board.num_clues == 0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            SudokuBoard.from_string("123")
        with pytest.raises(ValueError):
            SudokuBoard(np.zeros((8, 9), dtype=int))

    def test_validity_checks(self):
        board = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        assert board.is_valid()
        assert not board.is_complete()
        board.cells[0, 1] = 5  # duplicate 5 in row 0
        assert not board.is_valid()
        assert board.conflicts() >= 1

    def test_candidates(self):
        board = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        cands = board.candidates(0, 2)
        assert all(1 <= d <= 9 for d in cands)
        assert 5 not in cands  # 5 already in row 0
        assert 3 not in cands  # 3 already in row 0
        assert board.candidates(0, 0) == [5]  # a filled cell

    def test_respects_clues(self):
        clues = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        other = clues.copy()
        assert other.respects_clues(clues)
        row, col, _ = clues.clue_positions()[0]
        other.cells[row, col] = 9 if other.cells[row, col] != 9 else 8
        assert not other.respects_clues(clues)

    def test_pretty_render(self):
        text = SudokuBoard.from_string(EXAMPLE_PUZZLE).pretty()
        assert text.count("\n") == 10
        assert "|" in text


class TestBacktrackingSolver:
    def test_solves_example(self):
        board = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        solution = BacktrackingSolver().solve(board)
        assert solution is not None
        assert solution.is_solved()
        assert solution.respects_clues(board)

    def test_unique_solution_detection(self):
        assert BacktrackingSolver().has_unique_solution(SudokuBoard.from_string(EXAMPLE_PUZZLE))
        # An empty board has many solutions.
        assert not BacktrackingSolver().has_unique_solution(SudokuBoard.empty())

    def test_unsolvable_board(self):
        board = SudokuBoard.empty()
        board.cells[0, :] = [1, 2, 3, 4, 5, 6, 7, 8, 0]
        board.cells[1, 0] = 9
        board.cells[0, 8] = 0
        # Make cell (0,8) impossible: its row has 1-8 and its column/box has 9.
        board.cells[2, 8] = 9
        board.cells[1, 8] = 0
        candidates = board.candidates(0, 8)
        if candidates:  # ensure the construction really blocks the cell
            board.cells[1, 8] = candidates[0] if candidates[0] != 9 else 0
        result = BacktrackingSolver().solve(board)
        # Either unsolvable (None) or solvable-but-valid; both must not crash.
        assert result is None or result.is_solved()

    def test_nodes_visited_counter(self):
        solver = BacktrackingSolver()
        solver.solve(SudokuBoard.from_string(EXAMPLE_PUZZLE))
        assert solver.nodes_visited > 0


class TestPuzzleGenerator:
    def test_complete_grid_is_solved(self):
        grid = PuzzleGenerator(seed=5).complete_grid()
        assert grid.is_solved()

    def test_different_seeds_different_grids(self):
        g1 = PuzzleGenerator().complete_grid(seed=1)
        g2 = PuzzleGenerator().complete_grid(seed=2)
        assert not np.array_equal(g1.cells, g2.cells)

    def test_generated_puzzle_is_unique_and_solvable(self):
        gp = PuzzleGenerator().generate(seed=11, target_clues=32)
        assert gp.puzzle.is_valid()
        assert gp.num_clues >= 17
        assert BacktrackingSolver().has_unique_solution(gp.puzzle)
        assert gp.solution.is_solved()
        assert gp.solution.respects_clues(gp.puzzle)

    def test_difficulty_proxy_positive(self):
        gp = PuzzleGenerator().generate(seed=12, target_clues=30)
        assert gp.difficulty_proxy() > 0

    def test_generate_puzzle_set_deterministic(self):
        set_a = generate_puzzle_set(2, base_seed=50, target_clues=32)
        set_b = generate_puzzle_set(2, base_seed=50, target_clues=32)
        assert len(set_a) == 2
        for a, b in zip(set_a, set_b):
            assert np.array_equal(a.puzzle.cells, b.puzzle.cells)
