"""Tests for the WTA network construction and the SNN Sudoku solver."""

import numpy as np
import pytest

from repro.sudoku import (
    NUM_NEURONS,
    SNNSudokuSolver,
    SudokuBoard,
    EXAMPLE_PUZZLE,
    WTAConfig,
    build_wta_synapses,
    conflicting_neurons,
    connectivity_statistics,
    neuron_coordinates,
    neuron_index,
)


class TestIndexing:
    def test_total_neurons(self):
        assert NUM_NEURONS == 729

    def test_roundtrip(self):
        for idx in (0, 100, 364, 728):
            assert neuron_index(*neuron_coordinates(idx)) == idx

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            neuron_index(0, 0, 0)
        with pytest.raises(ValueError):
            neuron_index(9, 0, 1)
        with pytest.raises(ValueError):
            neuron_coordinates(729)


class TestConnectivity:
    def test_out_degree_is_28(self):
        assert len(conflicting_neurons(0, 0, 1)) == 28
        assert len(conflicting_neurons(4, 4, 9)) == 28

    def test_no_self_inhibition(self):
        assert neuron_index(3, 3, 5) not in conflicting_neurons(3, 3, 5)

    def test_conflicts_are_symmetric(self):
        a = neuron_index(0, 0, 5)
        b = neuron_index(0, 8, 5)  # same row, same digit
        assert b in conflicting_neurons(0, 0, 5)
        assert a in conflicting_neurons(0, 8, 5)

    def test_cell_conflicts_cover_other_digits(self):
        targets = conflicting_neurons(2, 2, 1)
        cell_targets = [t for t in targets if neuron_coordinates(t)[:2] == (2, 2)]
        assert len(cell_targets) == 8

    def test_statistics_match_figure4(self):
        stats = connectivity_statistics()
        assert stats.inhibitory_out_degree == 28
        assert stats.row_targets == 8
        assert stats.column_targets == 8
        assert stats.box_only_targets == 4
        assert stats.cell_targets == 8
        assert stats.num_inhibitory_edges == 729 * 28

    def test_synapse_matrix_shape_and_signs(self):
        cfg = WTAConfig()
        syn = build_wta_synapses(cfg)
        assert syn.matrix.shape == (729, 729)
        diag = syn.matrix.diagonal()
        np.testing.assert_allclose(diag, cfg.self_excitation)
        off_diag_sum = syn.matrix.sum() - diag.sum()
        assert off_diag_sum == pytest.approx(cfg.inhibition_weight * 729 * 28)


class TestSolver:
    def test_rejects_invalid_puzzle(self):
        board = SudokuBoard.empty()
        board.cells[0, 0] = board.cells[0, 1] = 7
        with pytest.raises(ValueError):
            SNNSudokuSolver().solve(board, max_steps=10)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            SNNSudokuSolver(backend="analog")

    def test_decode_uses_clues(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        counts = np.zeros(NUM_NEURONS, dtype=np.int64)
        last = np.full(NUM_NEURONS, -1, dtype=np.int64)
        decoded = SNNSudokuSolver.decode(counts, last, puzzle)
        assert decoded.respects_clues(puzzle)
        # Cells without any spikes stay empty (apart from the clues).
        assert decoded.num_clues == puzzle.num_clues

    def test_short_run_produces_activity(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        result = SNNSudokuSolver(seed=1).solve(puzzle, max_steps=60, check_interval=20)
        assert result.total_spikes > 0
        assert result.neuron_updates == result.steps * NUM_NEURONS * 2
        assert result.board.respects_clues(puzzle)

    @pytest.mark.slow
    def test_solves_example_puzzle(self):
        puzzle = SudokuBoard.from_string(EXAMPLE_PUZZLE)
        result = SNNSudokuSolver(seed=3).solve(
            puzzle, max_steps=4000, check_interval=5, verify_against_reference=True
        )
        assert result.solved
        assert result.board.is_solved()
        assert result.board.respects_clues(puzzle)
        assert result.matches_reference
