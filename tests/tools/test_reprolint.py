"""reprolint framework + rule tests.

Each rule gets at least one failing and one passing fixture, built in a
throw-away tree under ``tmp_path`` and linted with the default config
(the fixture layout mirrors the real repo's ``src/repro`` paths so the
rules' scope prefixes apply unchanged).  The suite ends with the
self-check the CI job relies on: the *real* tree lints clean.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint.config import ReprolintConfig, load_config  # noqa: E402
from tools.reprolint.engine import run_reprolint  # noqa: E402
from tools.reprolint.rules import get_rules  # noqa: E402


def lint(tmp_path, files, roots=None, config=None):
    """Write ``files`` (rel -> source) under ``tmp_path`` and lint them."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    if roots is None:
        roots = sorted({rel.split("/")[0] for rel in files})
    return run_reprolint(tmp_path, roots, config or ReprolintConfig())


def rules_hit(result):
    return sorted({violation.rule for violation in result.violations})


# ---------------------------------------------------------------------- #
# Framework: registry, suppressions, parse failures
# ---------------------------------------------------------------------- #
class TestFramework:
    def test_all_five_rules_registered(self):
        assert [rule.rule_id for rule in get_rules()] == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
        ]

    def test_unparseable_file_is_reported_not_crashed(self, tmp_path):
        result = lint(tmp_path, {"src/repro/runtime/bad.py": "def broken(:\n"})
        assert rules_hit(result) == ["RL000"]
        assert "cannot lint" in result.violations[0].message

    def test_same_line_suppression(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/a.py": """\
                s = seed + 1  # reprolint: disable=RL002 -- fixture waiver
                """
            },
        )
        assert result.ok, result.render_text()

    def test_disable_next_line_suppression(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/a.py": """\
                # reprolint: disable-next-line=RL002
                s = seed + 1
                """
            },
        )
        assert result.ok, result.render_text()

    def test_disable_file_suppression(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/a.py": """\
                # reprolint: disable-file=RL002
                s = seed + 1
                t = seed + 2
                """
            },
        )
        assert result.ok, result.render_text()

    def test_suppression_only_covers_listed_rule(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/a.py": """\
                s = seed + 1  # reprolint: disable=RL001 -- wrong rule id
                """
            },
        )
        # The RL002 finding survives AND the RL001 waiver is unused.
        assert rules_hit(result) == ["RL000", "RL002"]

    def test_unused_suppression_is_flagged(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/a.py": """\
                x = 1  # reprolint: disable=RL002 -- stale
                """
            },
        )
        assert rules_hit(result) == ["RL000"]
        assert "unused suppression" in result.violations[0].message

    def test_disable_rule_wholesale(self, tmp_path):
        config = ReprolintConfig(disable=("RL002",), check_unused_suppressions=False)
        result = lint(
            tmp_path,
            {"src/repro/runtime/a.py": "s = seed + 1\n"},
            config=config,
        )
        assert result.ok
        assert "RL002" not in result.rules_run

    def test_json_shape(self, tmp_path):
        result = lint(tmp_path, {"src/repro/runtime/a.py": "s = seed + 1\n"})
        payload = result.as_json()
        assert payload["tool"] == "reprolint"
        assert payload["summary"] == {"RL002": 1}
        (violation,) = payload["violations"]
        assert violation["rule"] == "RL002"
        assert violation["path"] == "src/repro/runtime/a.py"


# ---------------------------------------------------------------------- #
# RL001 — layering
# ---------------------------------------------------------------------- #
class TestLayering:
    def test_module_scope_upward_import_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_csp.py": """\
                from repro.csp import solver
                """
            },
        )
        assert rules_hit(result) == ["RL001"]
        assert "upward import" in result.violations[0].message

    def test_relative_upward_import_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_csp.py": """\
                from ..csp import solver
                """
            },
        )
        assert rules_hit(result) == ["RL001"]

    def test_downward_import_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/serve/uses_runtime.py": """\
                from repro.runtime import batch
                from ..csp import solver
                """
            },
        )
        assert result.ok, result.render_text()

    def test_deferred_upward_import_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/lazy.py": """\
                def build():
                    from repro.csp import solver

                    return solver
                """
            },
        )
        assert result.ok, result.render_text()

    def test_type_checking_upward_import_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/typed.py": """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.csp import solver
                """
            },
        )
        assert result.ok, result.render_text()

    def test_module_scope_adapter_import_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_adapter.py": """\
                from repro.harness import experiments
                """
            },
        )
        assert rules_hit(result) == ["RL001"]
        assert "adapter" in result.violations[0].message

    def test_adapter_may_import_any_layer(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/harness/uses_all.py": """\
                from repro.csp import solver
                from repro.serve import service
                """
            },
        )
        assert result.ok, result.render_text()

    def test_batch_seam_outside_runtime_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/csp/recompose.py": """\
                def refill(self, survivors, admissions):
                    self._batch.retain(survivors)
                    self._batch.extend(admissions)
                """
            },
        )
        assert len(result.violations) == 2
        assert rules_hit(result) == ["RL001"]

    def test_batch_seam_inside_runtime_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/slots2.py": """\
                def recompose(self, survivors, admissions):
                    self._batch.retain(survivors)
                    self._batch.extend(admissions)
                """
            },
        )
        assert result.ok, result.render_text()

    def test_list_extend_is_not_the_seam(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/csp/listy.py": """\
                def collect(rows):
                    out = []
                    out.extend(rows)
                    return out
                """
            },
        )
        assert result.ok, result.render_text()


# ---------------------------------------------------------------------- #
# RL002 — determinism
# ---------------------------------------------------------------------- #
class TestDeterminism:
    def test_unseeded_default_rng_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/snn/gen.py": """\
                import numpy as np

                rng = np.random.default_rng()
                """
            },
        )
        assert rules_hit(result) == ["RL002"]

    def test_seeded_default_rng_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/snn/gen.py": """\
                import numpy as np

                def build(seed):
                    return np.random.default_rng(seed)
                """
            },
        )
        assert result.ok, result.render_text()

    def test_legacy_np_random_module_rng_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/snn/gen.py": """\
                import numpy as np

                noise = np.random.rand(100)
                """
            },
        )
        assert rules_hit(result) == ["RL002"]

    def test_stdlib_random_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/snn/gen.py": """\
                import random

                jitter = random.random()
                """
            },
        )
        assert rules_hit(result) == ["RL002"]

    def test_raw_seed_arithmetic_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/seeds.py": """\
                def spread(base_seed, n):
                    return [base_seed + i for i in range(n)]
                """
            },
        )
        assert rules_hit(result) == ["RL002"]
        assert "raw seed arithmetic" in result.violations[0].message

    def test_seed_arithmetic_inside_mixer_is_sanctioned(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/seeds.py": """\
                from numpy.random import SeedSequence


                def spread(base_seed, n, salt):
                    root = SeedSequence(base_seed ^ salt)
                    return [derive_task_seed(base_seed + 17, i) for i in range(n)]
                """
            },
        )
        assert result.ok, result.render_text()

    def test_wall_clock_read_fails_in_clock_scope(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/csp/timing.py": """\
                import time


                def stamp():
                    return time.monotonic()
                """
            },
        )
        assert rules_hit(result) == ["RL002"]
        assert "wall-clock" in result.violations[0].message

    def test_clock_allowlist_exempts_module(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/sweep.py": """\
                import time


                def stamp():
                    return time.monotonic()
                """
            },
        )
        assert result.ok, result.render_text()

    def test_clock_outside_scope_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "benchmarks/bench_x.py": """\
                import time


                def stamp():
                    return time.perf_counter()
                """
            },
        )
        assert result.ok, result.render_text()


# ---------------------------------------------------------------------- #
# RL003 — exact-int regions
# ---------------------------------------------------------------------- #
class TestExactInt:
    def test_float_literal_in_marked_def_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fixedpoint/kern.py": """\
                # reprolint: exact-int
                def decay(raw):
                    return raw * 0.5
                """
            },
        )
        assert rules_hit(result) == ["RL003"]
        assert "float literal" in result.violations[0].message

    def test_true_division_in_marked_def_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fixedpoint/kern.py": """\
                def scale(raw):  # reprolint: exact-int
                    return raw / 4
                """
            },
        )
        assert rules_hit(result) == ["RL003"]
        assert "division" in result.violations[0].message

    def test_astype_float_in_marked_class_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fixedpoint/kern.py": """\
                import numpy as np


                # reprolint: exact-int
                class Kernel:
                    def widen(self, raw):
                        return raw.astype(np.float64)
                """
            },
        )
        assert rules_hit(result) == ["RL003"]

    def test_integer_only_marked_def_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fixedpoint/kern.py": """\
                # reprolint: exact-int
                def decay(raw, shift):
                    return (raw * 3) >> shift
                """
            },
        )
        assert result.ok, result.render_text()

    def test_unmarked_float_code_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fixedpoint/boundary.py": """\
                def quantize(value):
                    return value * 0.5 / 3.0
                """
            },
        )
        assert result.ok, result.render_text()

    def test_file_marker_covers_whole_module(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fixedpoint/kern.py": """\
                # reprolint: exact-int-file
                HALF = 0.5
                """
            },
        )
        assert rules_hit(result) == ["RL003"]

    def test_dangling_marker_is_flagged(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/fixedpoint/kern.py": """\
                # reprolint: exact-int

                X = 1


                def later():
                    return X
                """
            },
        )
        assert rules_hit(result) == ["RL003"]
        assert "dangling" in result.violations[0].message


# ---------------------------------------------------------------------- #
# RL004 — crash safety
# ---------------------------------------------------------------------- #
class TestCrashSafety:
    def test_bare_write_open_in_durable_module_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/checkpoint.py": """\
                def save(path, payload):
                    with open(path, "wb") as handle:
                        handle.write(payload)
                """
            },
        )
        assert rules_hit(result) == ["RL004"]
        assert "torn file" in result.violations[0].message

    def test_path_write_text_in_durable_module_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/serve/journal.py": """\
                def save(path, payload):
                    path.write_text(payload)
                """
            },
        )
        assert rules_hit(result) == ["RL004"]

    def test_append_mode_in_durable_module_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/serve/journal.py": """\
                def append(path, record):
                    with open(path, "ab") as handle:
                        handle.write(record)
                """
            },
        )
        assert result.ok, result.render_text()

    def test_write_open_outside_durable_modules_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/report.py": """\
                def dump(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """
            },
        )
        assert result.ok, result.render_text()

    def test_ungated_os_exit_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/serve/svc.py": """\
                import os


                def die():
                    os._exit(1)
                """
            },
        )
        assert rules_hit(result) == ["RL004"]
        assert "os._exit" in result.violations[0].message

    def test_faultplan_gated_os_exit_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/serve/svc.py": """\
                import os


                def crash(plan):
                    os._exit(plan.CRASH_EXIT_CODE)
                """
            },
        )
        assert result.ok, result.render_text()


# ---------------------------------------------------------------------- #
# RL005 — worker hygiene
# ---------------------------------------------------------------------- #
class TestWorkerHygiene:
    def test_lambda_task_fn_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_sweep.py": """\
                def run(executor):
                    return executor.sweep(SweepSpec(fn=lambda task: task.params))
                """
            },
        )
        assert rules_hit(result) == ["RL005"]
        assert "lambda" in result.violations[0].message

    def test_nested_def_task_fn_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_sweep.py": """\
                def build_spec():
                    def task(t):
                        return t.params

                    return SweepSpec(fn=task)
                """
            },
        )
        assert rules_hit(result) == ["RL005"]
        assert "closures" in result.violations[0].message

    def test_task_fn_mutating_module_global_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_sweep.py": """\
                RESULTS = {}


                def task(t):
                    RESULTS[t.index] = t.params
                    return t.params


                SPEC = SweepSpec(fn=task)
                """
            },
        )
        assert rules_hit(result) == ["RL005"]
        assert "mutates module-level" in result.violations[0].message

    def test_global_statement_in_task_fn_fails(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_sweep.py": """\
                COUNT = 0


                def task(t):
                    global COUNT
                    COUNT = COUNT + 1
                    return t.params


                SPEC = SweepSpec(fn=task)
                """
            },
        )
        assert "RL005" in rules_hit(result)

    def test_pure_module_level_task_fn_passes(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_sweep.py": """\
                def task(t):
                    params = dict(t.params)
                    params["answer"] = 42
                    return params


                SPEC = SweepSpec(fn=task)
                """
            },
        )
        assert result.ok, result.render_text()

    def test_unrelated_run_calls_do_not_trip_the_rule(self, tmp_path):
        result = lint(
            tmp_path,
            {
                "src/repro/runtime/uses_sweep.py": """\
                def start(service, request):
                    return service.run(request)
                """
            },
        )
        assert result.ok, result.render_text()


# ---------------------------------------------------------------------- #
# Self-check and CLI: the real tree is clean
# ---------------------------------------------------------------------- #
class TestRealTree:
    def test_real_tree_is_clean(self):
        config = load_config(REPO_ROOT)
        result = run_reprolint(REPO_ROOT, ("src", "tools", "benchmarks"), config)
        assert result.ok, result.render_text()
        assert result.files_checked > 50

    def test_pyproject_config_matches_builtin_defaults(self):
        # The committed [tool.reprolint] must stay in sync with the
        # code defaults, so machines without tomllib behave identically.
        assert load_config(REPO_ROOT) == ReprolintConfig()

    def test_cli_clean_exit_and_json_report(self, tmp_path):
        report = tmp_path / "reprolint.json"
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--json-report", str(report), "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(report.read_text())
        assert payload["tool"] == "reprolint"
        assert payload["violations"] == []

    def test_cli_exit_one_on_synthetic_violation(self, tmp_path):
        # RL005 applies everywhere, so an absolute-path root outside the
        # repo still demonstrates the non-zero exit contract end to end.
        bad = tmp_path / "bad_sweep.py"
        bad.write_text("SPEC = SweepSpec(fn=lambda task: task.params)\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", str(bad)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "RL005" in proc.stdout

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in proc.stdout

    def test_check_layering_shim_delegates(self):
        proc = subprocess.run(
            [sys.executable, "tools/check_layering.py"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "deprecated" in proc.stderr
        assert "RL001" in proc.stdout

    @pytest.mark.parametrize(
        "snippet, rule",
        [
            ("from repro.csp import solver\n", "RL001"),
            ("s = seed + 1\n", "RL002"),
            ("# reprolint: exact-int\ndef f(x):\n    return x * 0.5\n", "RL003"),
            ("import os\n\n\ndef die():\n    os._exit(3)\n", "RL004"),
            ("SPEC = SweepSpec(fn=lambda t: t)\n", "RL005"),
        ],
    )
    def test_each_rule_fires_on_synthetic_violation(self, tmp_path, snippet, rule):
        rel = (
            "src/repro/runtime/checkpoint.py"
            if rule == "RL004"
            else "src/repro/runtime/synthetic.py"
        )
        result = lint(tmp_path, {rel: snippet})
        assert rule in rules_hit(result), result.render_text()
