"""Tests for the reporting helpers and the lightweight experiment drivers."""


from repro.harness import (
    fig4_wta,
    fig5_floorplan,
    format_comparison,
    format_kv,
    format_table,
    softfloat_speedup,
    table1_isa_roundtrip,
    table2_dcu,
    table3_max10,
    table4_agilex,
    table7_asic,
)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["Name", "Value"], [["alpha", 1.5], ["b", 1234.0]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert len(lines) == 5

    def test_format_comparison(self):
        rows = {"IPC": {"paper": 0.57, "measured": 0.76}}
        text = format_comparison(rows, columns=["paper", "measured"])
        assert "IPC" in text and "0.57" in text

    def test_format_kv(self):
        text = format_kv({"speedup": 1.64})
        assert "speedup" in text and "1.64" in text

    def test_missing_column_rendered_as_dash(self):
        text = format_comparison({"x": {"a": 1}}, columns=["a", "b"])
        assert "-" in text


class TestExperimentDrivers:
    def test_table1(self):
        rows = table1_isa_roundtrip()
        assert set(rows) == {"nmldl", "nmldh", "nmpn", "nmdec"}
        assert all(r["roundtrip_ok"] and r["custom0"] for r in rows.values())
        assert all(r["opcode"] == "0001011" for r in rows.values())

    def test_table2_flags_paper_discrepancy(self):
        table = table2_dcu()
        assert table[7]["matches_paper"]
        assert not table[6]["matches_paper"]  # the /6 typo in the paper

    def test_table3_and_table4(self):
        t3 = table3_max10()
        assert t3["model_rows"]["Frequency"] == "30 MHz"
        t4 = table4_agilex()
        assert set(t4["reports"]) == {16, 32, 64}
        assert t4["max_cores"] > 100

    def test_table7(self):
        t7 = table7_asic()
        assert set(t7["reports"]) == {"FreePDK45", "ASAP7"}

    def test_fig4(self):
        data = fig4_wta()
        assert data["stats"].inhibitory_out_degree == data["expected_out_degree"] == 28

    def test_fig5(self):
        data = fig5_floorplan()
        assert "FreePDK45" in data and "ASAP7" in data
        assert 0.1 < data["npu_fraction"] < 0.3

    def test_softfloat_speedup_order_of_magnitude(self):
        result = softfloat_speedup(num_neurons=24, num_steps=2)
        assert result["speedup"] > 10.0
        assert result["extension_cycles_per_update"] > 1.0
