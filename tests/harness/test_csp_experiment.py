"""The harness solve-rate experiment for the generic constraint solver."""

from repro.harness import csp_solve_rate


class TestCSPSolveRate:
    def test_batched_run_shape(self):
        result = csp_solve_rate(
            scenario="australia", count=2, max_steps=500, solver_seed=1
        )
        assert result["scenario"] == "australia"
        assert result["num_instances"] == 2
        assert result["num_neurons"] == 21
        assert len(result["results"]) == 2
        assert 0.0 <= result["solve_rate"] <= 1.0
        # Deterministic: the Australian map solves quickly with this seed.
        assert result["solve_rate"] == 1.0

    def test_batched_matches_sequential(self):
        kwargs = dict(
            scenario="latin",
            count=2,
            max_steps=300,
            seed=0,
            solver_seed=7,
            scenario_params={"n": 4},
        )
        batched = csp_solve_rate(batched=True, **kwargs)
        sequential = csp_solve_rate(batched=False, **kwargs)
        assert batched["solve_rate"] == sequential["solve_rate"]
        assert batched["mean_steps"] == sequential["mean_steps"]
        for a, b in zip(batched["results"], sequential["results"]):
            assert a.total_spikes == b.total_spikes
            assert a.steps == b.steps
            assert (a.values == b.values).all()
