"""Tests for the soft-float baseline cost model."""

import pytest

from repro.codegen import (
    FloatOpCounts,
    IZHIKEVICH_FLOAT_OPS,
    SoftFloatCostModel,
    estimate_softfloat_speedup,
)


class TestFloatOpCounts:
    def test_izhikevich_budget(self):
        ops = IZHIKEVICH_FLOAT_OPS
        assert ops.multiplications >= 7
        assert ops.divisions == 1
        assert ops.total == (
            ops.additions + ops.multiplications + ops.divisions + ops.comparisons + ops.int_float_conversions
        )


class TestCostModel:
    def test_instruction_count_dominated_by_mul_and_div(self):
        model = SoftFloatCostModel()
        breakdown = model.breakdown()
        assert breakdown["multiplications"] > breakdown["comparisons"]
        assert sum(breakdown.values()) == model.instructions_per_update()

    def test_cycles_exceed_instructions(self):
        model = SoftFloatCostModel()
        assert model.cycles_per_update() > model.instructions_per_update()

    def test_custom_op_counts(self):
        model = SoftFloatCostModel()
        cheap = FloatOpCounts(additions=1, multiplications=1, divisions=0, comparisons=0, int_float_conversions=0)
        assert model.instructions_per_update(cheap) < model.instructions_per_update()

    def test_speedup_scale(self):
        # With ~30 cycles per extension update the speedup lands in the
        # tens, consistent with the paper's ~40x claim.
        speedup = estimate_softfloat_speedup(30.0)
        assert 20.0 < speedup < 100.0

    def test_speedup_inversely_proportional(self):
        assert estimate_softfloat_speedup(10.0) == pytest.approx(2 * estimate_softfloat_speedup(20.0))
