"""Tests for the workload memory layout and the generated kernels."""

import numpy as np
import pytest

from repro.codegen import (
    WorkloadSpec,
    baseline_kernel,
    build_eighty_twenty_workload,
    encode_network_data,
    extension_kernel,
    kernel_source,
)
from repro.isa import assemble


def tiny_spec(num_neurons=4, num_steps=2):
    rng = np.random.default_rng(0)
    n = num_neurons
    weights = np.zeros((n, n))
    weights[0, 1] = 0.5
    weights[2, 3] = -1.0
    return WorkloadSpec(
        a=np.full(n, 0.02),
        b=np.full(n, 0.2),
        c=np.full(n, -65.0),
        d=np.full(n, 8.0),
        v0=np.full(n, -65.0),
        u0=np.full(n, -13.0),
        weights=weights,
        external_input=rng.normal(5.0, 1.0, size=(num_steps, n)),
        name="tiny",
    )


class TestLayout:
    def test_regions_are_disjoint_and_ordered(self):
        layout = tiny_spec().layout()
        addresses = [
            layout.vu_base,
            layout.current_base,
            layout.param_base,
            layout.input_base,
            layout.rowptr_base,
            layout.syn_index_base,
            layout.syn_weight_base,
            layout.spike_buffer_base,
            layout.result_base,
            layout.end,
        ]
        assert addresses == sorted(addresses)
        assert all(a % 4 == 0 for a in addresses)

    def test_symbols_contain_all_bases(self):
        symbols = tiny_spec().layout().as_symbols()
        assert {"VU_BASE", "CURRENT_BASE", "PARAM_BASE", "INPUT_BASE", "ROWPTR_BASE",
                "SYN_INDEX_BASE", "SYN_WEIGHT_BASE", "SPIKE_BUF_BASE", "RESULT_BASE",
                "NUM_NEURONS", "NUM_STEPS"} <= set(symbols)

    def test_total_bytes_scale_with_network(self):
        small = tiny_spec(num_neurons=4).layout()
        large = tiny_spec(num_neurons=16).layout()
        assert large.total_bytes > small.total_bytes


class TestSpec:
    def test_validation(self):
        spec = tiny_spec()
        with pytest.raises(ValueError):
            WorkloadSpec(
                a=spec.a[:-1], b=spec.b, c=spec.c, d=spec.d, v0=spec.v0, u0=spec.u0,
                weights=spec.weights, external_input=spec.external_input,
            )
        with pytest.raises(ValueError):
            WorkloadSpec(
                a=spec.a, b=spec.b, c=spec.c, d=spec.d, v0=spec.v0, u0=spec.u0,
                weights=np.zeros((3, 3)), external_input=spec.external_input,
            )

    def test_csr_matches_dense(self):
        spec = tiny_spec()
        row_ptr, col_index, weight = spec.csr()
        assert row_ptr[-1] == 2
        # Neuron 1 has one outgoing synapse to neuron 0 with weight 0.5.
        start, end = row_ptr[1], row_ptr[2]
        assert list(col_index[start:end]) == [0]
        assert weight[start:end][0] == 0.5


class TestEncoding:
    def test_encoded_image_fits_layout(self):
        spec = tiny_spec()
        layout = spec.layout()
        words = encode_network_data(spec, layout)
        addresses = [a for a, _ in words]
        assert min(addresses) == layout.vu_base
        assert max(addresses) < layout.end
        assert len(addresses) == len(set(addresses))  # no overlaps

    def test_vu_words_match_initial_state(self):
        from repro.fixedpoint import unpack_vu_float

        spec = tiny_spec()
        layout = spec.layout()
        image = dict(encode_network_data(spec, layout))
        v, u = unpack_vu_float(image[layout.vu_base])
        assert v == pytest.approx(-65.0, abs=0.01)
        assert u == pytest.approx(-13.0, abs=0.01)


class TestKernels:
    def test_both_kernels_assemble(self):
        layout = tiny_spec().layout()
        for source in (extension_kernel(layout), baseline_kernel(layout)):
            program = assemble(source)
            assert len(program.words) > 50

    def test_kernel_source_dispatch(self):
        layout = tiny_spec().layout()
        assert "nmpn" in kernel_source("extension", layout)
        assert "nmpn" not in kernel_source("baseline", layout)
        with pytest.raises(ValueError):
            kernel_source("gpu", layout)

    def test_extension_kernel_uses_all_custom_instructions(self):
        source = extension_kernel(tiny_spec().layout())
        for mnemonic in ("nmldl", "nmldh", "nmpn", "nmdec"):
            assert mnemonic in source

    def test_baseline_kernel_tau_shift_sequence(self):
        source = baseline_kernel(tiny_spec().layout(), tau_select=7)
        # 1/7 is approximated with shifts 3, 6 and 9 (paper Table II).
        assert "srai a3, a1, 3" in source
        assert ", 6" in source and ", 9" in source

    def test_pin_voltage_adds_clamp(self):
        layout = tiny_spec().layout()
        assert "bas_no_pin" in baseline_kernel(layout, pin_voltage=True)
        assert "bas_no_pin" not in baseline_kernel(layout, pin_voltage=False)


class TestWorkloadBuilders:
    def test_eighty_twenty_builder_shapes(self):
        wl = build_eighty_twenty_workload(num_neurons=20, num_steps=2, kind="extension")
        assert wl.layout.num_neurons == 20
        assert wl.spec.num_steps == 2
        assert wl.program.size_bytes > 0

    def test_instructions_per_update_estimate(self):
        ext = build_eighty_twenty_workload(num_neurons=10, num_steps=1, kind="extension")
        bas = build_eighty_twenty_workload(num_neurons=10, num_steps=1, kind="baseline")
        assert bas.instructions_per_update_estimate > ext.instructions_per_update_estimate

    def test_simulator_roundtrip(self):
        wl = build_eighty_twenty_workload(num_neurons=10, num_steps=2, kind="extension")
        fsim = wl.make_simulator()
        fsim.run(max_instructions=200_000)
        assert fsim.halted
        assert wl.total_spikes(fsim) >= 0
        assert len(wl.read_vu_words(fsim)) == 10
