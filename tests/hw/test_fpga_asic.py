"""Tests for the FPGA and standard-cell hardware cost models."""

import pytest

from repro.harness import paper_data
from repro.hw import (
    AGILEX7_CORE,
    AGILEX7_DEVICE,
    ASAP7,
    AsicModel,
    FPGAResourceModel,
    FREEPDK45,
    MAX10_CORE,
    MAX10_DEVICE,
    agilex_scaling_reports,
    block_fractions,
    floorplan_summary,
    max10_dual_core_report,
    render_floorplan,
    standard_cell_reports,
)


class TestMax10Model:
    def test_dual_core_matches_table3(self):
        report = max10_dual_core_report()
        paper = paper_data.PAPER_TABLE3_MAX10
        assert report.logic == pytest.approx(paper["logic_elements"], rel=0.02)
        assert report.flipflops == pytest.approx(paper["flipflops"], rel=0.02)
        assert report.memory == pytest.approx(paper["bram_kb"], rel=0.02)
        assert report.dsp == paper["multipliers"]
        assert report.logic_percent == pytest.approx(paper["logic_percent"], abs=2.0)

    def test_three_cores_do_not_fit_max10(self):
        model = FPGAResourceModel(MAX10_DEVICE, MAX10_CORE)
        assert model.estimate(2).fits
        assert not model.estimate(3).fits
        assert model.max_cores() == 2

    def test_report_rows_format(self):
        rows = max10_dual_core_report().as_rows()
        assert rows["Frequency"] == "30 MHz"
        assert "%" in rows["Logic elements"]


class TestAgilexModel:
    def test_scaling_matches_table4(self):
        for report in agilex_scaling_reports([16, 32, 64]):
            paper = paper_data.PAPER_TABLE4_AGILEX[report.num_cores]
            assert report.logic == pytest.approx(paper["alm"], rel=0.05)
            assert report.flipflops == pytest.approx(paper["ff"], rel=0.05)
            assert report.memory == pytest.approx(paper["ram_blocks"], rel=0.15)
            assert report.dsp == pytest.approx(paper["dsp"], rel=0.01)

    def test_resources_grow_linearly(self):
        reports = agilex_scaling_reports([16, 32, 64])
        assert reports[1].logic > reports[0].logic
        assert reports[2].logic > reports[1].logic

    def test_extrapolated_max_cores_near_paper_claim(self):
        model = FPGAResourceModel(AGILEX7_DEVICE, AGILEX7_CORE)
        max_cores = model.max_cores()
        assert 150 <= max_cores <= 250  # paper estimates "up to 192"

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            FPGAResourceModel(AGILEX7_DEVICE, AGILEX7_CORE).estimate(0)


class TestAsicModel:
    def test_freepdk45_matches_table7(self):
        report = standard_cell_reports()["FreePDK45"]
        paper = paper_data.PAPER_TABLE7_ASIC["FreePDK45"]
        assert report.total_area_um2 == pytest.approx(paper["total_area_um2"], rel=0.02)
        assert report.switching_power_mw == pytest.approx(paper["switching_power_mw"], rel=0.05)
        assert report.internal_power_mw == pytest.approx(paper["internal_power_mw"], rel=0.05)
        assert report.leakage_power_uw == pytest.approx(paper["leakage_uw"], rel=0.05)
        assert report.clock_mhz == paper["clock_mhz"]
        assert report.peak_neural_gips == pytest.approx(paper["peak_neural_gips"], rel=0.01)

    def test_asap7_matches_table7(self):
        report = standard_cell_reports()["ASAP7"]
        paper = paper_data.PAPER_TABLE7_ASIC["ASAP7"]
        assert report.total_area_um2 == pytest.approx(paper["total_area_um2"], rel=0.02)
        assert report.total_power_mw == pytest.approx(paper["total_power_mw"], rel=0.05)
        assert report.throughput_mupd_s == pytest.approx(paper["throughput_mupd_s"], rel=0.02)
        assert report.power_efficiency_gupd_s_w == pytest.approx(
            paper["power_efficiency_gupd_s_w"], rel=0.05
        )

    def test_area_shrinks_with_technology(self):
        reports = standard_cell_reports()
        assert reports["ASAP7"].total_area_um2 < reports["FreePDK45"].total_area_um2 / 10

    def test_npu_fraction_claim(self):
        model = AsicModel()
        assert model.npu_area_fraction() <= 0.25  # "no more than roughly 20 %"
        assert model.npu_area_fraction() >= 0.15
        assert model.dcu_area_fraction() < 0.03  # "< 2 %"

    def test_block_lookup(self):
        report = standard_cell_reports()["FreePDK45"]
        assert report.block_area("NPU") > report.block_area("DCU")
        with pytest.raises(KeyError):
            report.block_area("GPU")

    def test_as_rows_keys(self):
        rows = standard_cell_reports()["ASAP7"].as_rows()
        assert "Total area [um2]" in rows and "Clock [MHz]" in rows


class TestFloorplan:
    def test_fractions_sum_to_one(self):
        report = AsicModel().report(FREEPDK45)
        assert sum(block_fractions(report).values()) == pytest.approx(1.0)

    def test_render_contains_all_blocks(self):
        report = AsicModel().report(ASAP7)
        art = render_floorplan(report)
        for name in ("NPU", "DCU", "ALU", "Fetch/Decode"):
            assert name in art

    def test_summary_values(self):
        summary = floorplan_summary(AsicModel().report(FREEPDK45))
        assert 0.15 <= summary["npu_fraction"] <= 0.25
        assert summary["dcu_fraction"] < 0.03
        assert summary["total_area_um2"] > 0
