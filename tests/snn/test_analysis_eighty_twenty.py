"""Tests for spike analysis utilities and the 80-20 network builder."""

import numpy as np
import pytest

from repro.snn import (
    EightyTwentyConfig,
    SpikeRaster,
    band_power,
    build_eighty_twenty,
    histogram_similarity,
    interspike_intervals,
    isi_histogram,
    population_rate,
    render_ascii_raster,
    rhythm_summary,
    run_eighty_twenty,
)


class TestSpikeRaster:
    def test_from_bool_matrix(self):
        fired = np.zeros((10, 4), dtype=bool)
        fired[2, 1] = fired[5, 1] = fired[7, 3] = True
        raster = SpikeRaster.from_bool_matrix(fired)
        assert raster.num_spikes == 3
        np.testing.assert_array_equal(raster.spikes_of(1), [2, 5])
        np.testing.assert_array_equal(raster.to_bool_matrix(), fired)

    def test_from_events(self):
        raster = SpikeRaster.from_events([(1, 0), (3, 2)], num_neurons=4, num_steps=10)
        assert raster.num_spikes == 2

    def test_empty(self):
        raster = SpikeRaster.empty(5, 100)
        assert raster.num_spikes == 0
        assert raster.mean_rate_hz() == 0.0

    def test_mean_rate(self):
        fired = np.zeros((1000, 2), dtype=bool)
        fired[::100, 0] = True  # 10 spikes over 1 s for neuron 0
        raster = SpikeRaster.from_bool_matrix(fired)
        assert raster.mean_rate_hz() == pytest.approx(5.0)  # averaged over 2 neurons

    def test_restrict_neurons(self):
        fired = np.zeros((10, 6), dtype=bool)
        fired[0, 0] = fired[1, 5] = True
        sub = SpikeRaster.from_bool_matrix(fired).restrict_neurons(slice(4, 6))
        assert sub.num_neurons == 2
        assert sub.num_spikes == 1
        assert sub.neuron_ids[0] == 1


class TestISI:
    def test_intervals(self):
        raster = SpikeRaster.from_events(
            [(0, 0), (10, 0), (25, 0), (5, 1), (6, 1)], num_neurons=2, num_steps=30
        )
        intervals = np.sort(interspike_intervals(raster))
        np.testing.assert_array_equal(intervals, [1, 10, 15])

    def test_histogram_binning(self):
        raster = SpikeRaster.from_events([(0, 0), (12, 0), (24, 0)], num_neurons=1, num_steps=40)
        edges, counts = isi_histogram(raster, bin_width=5.0, max_interval=50.0)
        assert counts.sum() == 2
        assert counts[2] == 2  # both intervals are 12 -> bin [10, 15)

    def test_similarity_bounds(self):
        a = np.array([1.0, 2.0, 3.0])
        assert histogram_similarity(a, a) == pytest.approx(1.0)
        assert histogram_similarity(a, np.array([3.0, 2.0, 1.0])) < 1.0
        assert histogram_similarity(np.zeros(3), np.zeros(3)) == 1.0
        with pytest.raises(ValueError):
            histogram_similarity(a, np.zeros(4))


class TestRhythms:
    def test_population_rate(self):
        raster = SpikeRaster.from_events([(0, 0), (0, 1), (3, 0)], num_neurons=2, num_steps=5)
        np.testing.assert_array_equal(population_rate(raster), [2, 0, 0, 1, 0])

    def test_band_power_detects_oscillation(self):
        t = np.arange(2000)
        signal_10hz = np.sin(2 * np.pi * 10.0 * t / 1000.0)
        alpha = band_power(signal_10hz, low_hz=8.0, high_hz=12.0)
        gamma = band_power(signal_10hz, low_hz=30.0, high_hz=80.0)
        assert alpha > 100 * max(gamma, 1e-12)

    def test_rhythm_summary_keys(self):
        raster = SpikeRaster.from_events([(i, i % 3) for i in range(0, 500, 7)], num_neurons=3, num_steps=500)
        summary = rhythm_summary(raster)
        assert {"alpha_power", "gamma_power", "alpha_fraction", "gamma_fraction", "mean_rate_hz"} <= set(summary)


class TestAsciiRaster:
    def test_dimensions_and_marks(self):
        fired = np.zeros((50, 20), dtype=bool)
        fired[10, 5] = True
        art = render_ascii_raster(SpikeRaster.from_bool_matrix(fired), max_rows=10, max_cols=25)
        lines = art.splitlines()
        assert len(lines) == 10
        assert any("|" in line for line in lines)

    def test_empty_raster(self):
        art = render_ascii_raster(SpikeRaster.empty(10, 10), max_rows=5, max_cols=5)
        assert set("".join(art.splitlines())) == {"."}


class TestEightyTwenty:
    def test_builder_shapes(self):
        net = build_eighty_twenty(EightyTwentyConfig(num_excitatory=40, num_inhibitory=10, seed=1))
        assert net.num_neurons == 50
        assert net.weights.shape == (50, 50)
        # Excitatory columns are non-negative, inhibitory ones non-positive.
        assert (net.weights[:, :40] >= 0).all()
        assert (net.weights[:, 40:] <= 0).all()

    def test_parameter_distributions(self):
        net = build_eighty_twenty(EightyTwentyConfig(num_excitatory=80, num_inhibitory=20, seed=2))
        assert np.all(net.a[:80] == 0.02)
        assert np.all(net.c[:80] >= -65.0) and np.all(net.c[:80] <= -50.0)
        assert np.all(net.d[80:] == 2.0)

    def test_thalamic_input_statistics(self):
        net = build_eighty_twenty(EightyTwentyConfig(num_excitatory=400, num_inhibitory=100, seed=3))
        sample = np.stack([net.thalamic_input(t) for t in range(50)])
        assert sample[:, :400].std() > sample[:, 400:].std()

    def test_run_small_network_both_backends(self):
        cfg = EightyTwentyConfig(num_excitatory=40, num_inhibitory=10, seed=7)
        raster_float, summary_float = run_eighty_twenty(num_steps=150, backend="float64", config=cfg)
        raster_fixed, summary_fixed = run_eighty_twenty(num_steps=150, backend="fixed", config=cfg)
        assert raster_float.num_spikes > 0
        assert raster_fixed.num_spikes > 0
        assert summary_float["backend"] == "float64"
        # Firing rates agree within a factor of ~3 between the backends.
        ratio = (raster_fixed.mean_rate_hz() + 1e-9) / (raster_float.mean_rate_hz() + 1e-9)
        assert 0.3 < ratio < 3.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_eighty_twenty(num_steps=10, backend="quantum")
