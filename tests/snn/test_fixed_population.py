"""Tests for the fixed-point population (bit-exact with the NPU)."""

import numpy as np
import pytest

from repro.fixedpoint import Q7_8, Q15_16
from repro.isa import IzhikevichParams
from repro.sim import NMConfig, NPU
from repro.snn import FixedPointPopulation, decay_current_raw


class TestConstruction:
    def test_from_float_parameters(self):
        pop = FixedPointPopulation.from_float_parameters([0.02], [0.2], [-65.0], [8.0])
        assert pop.size == 1
        assert pop.v[0] == pytest.approx(-65.0, abs=Q7_8.resolution)
        assert pop.u[0] == pytest.approx(-13.0, abs=0.1)
        assert pop.substeps_per_ms == 2

    def test_fine_timestep_substeps(self):
        pop = FixedPointPopulation.from_float_parameters([0.02], [0.2], [-65.0], [8.0], h_shift=3)
        assert pop.substeps_per_ms == 8


class TestEquivalenceWithNPU:
    def test_population_matches_scalar_npu(self):
        """Stepping the population equals stepping each neuron on the NPU."""
        params = IzhikevichParams.regular_spiking()
        pop = FixedPointPopulation.from_float_parameters(
            [params.a] * 3, [params.b] * 3, [params.c] * 3, [params.d] * 3
        )
        cfg = NMConfig()
        cfg.load_params(params)
        cfg.load_timestep()
        npu = NPU(cfg)

        v_ref = list(pop.v_raw)
        u_ref = list(pop.u_raw)
        currents = [0.0, 5.0, 12.0]
        isyn_raw = [Q15_16.from_float(c) for c in currents]
        for _ in range(50):
            pop.substep(np.asarray(isyn_raw))
            for k in range(3):
                v_ref[k], u_ref[k], _ = npu.update_raw(v_ref[k], u_ref[k], isyn_raw[k])
        np.testing.assert_array_equal(pop.v_raw, np.asarray(v_ref))
        np.testing.assert_array_equal(pop.u_raw, np.asarray(u_ref))

    def test_step_ms_spikes_with_strong_drive(self):
        pop = FixedPointPopulation.from_float_parameters([0.02] * 10, [0.2] * 10, [-65.0] * 10, [8.0] * 10)
        fired_total = np.zeros(10, dtype=bool)
        for _ in range(300):
            fired_total |= pop.step_ms(np.full(10, 15.0))
        assert fired_total.all()

    def test_pin_voltage_floor(self):
        pop = FixedPointPopulation.from_float_parameters(
            [0.1], [0.2], [-65.0], [2.0], pin_voltage=True
        )
        for _ in range(200):
            pop.step_ms(np.array([-50.0]))
            assert pop.v[0] >= -65.0 - Q7_8.resolution


class TestDecayHelper:
    def test_matches_dcu(self):
        from repro.sim import DCU

        cfg = NMConfig()
        cfg.load_timestep()
        dcu = DCU(cfg)
        raw = np.asarray(Q15_16.from_float(np.array([100.0, -40.0, 3.0])), dtype=np.int64)
        vec = decay_current_raw(raw, 4, 1)
        for k in range(3):
            assert vec[k] == dcu.decay_raw(int(raw[k]), 4)

    def test_decay_shrinks(self):
        raw = np.asarray([Q15_16.from_float(50.0)], dtype=np.int64)
        out = decay_current_raw(raw, 2, 1)
        assert 0 < out[0] < raw[0]
