"""Tests for the double-precision Izhikevich reference model."""

import numpy as np
import pytest

from repro.snn import IzhikevichPopulation, euler_step, izhikevich_derivatives


class TestDerivatives:
    def test_known_value(self):
        dv, du = izhikevich_derivatives(
            np.array([-65.0]), np.array([-13.0]), np.array([0.0]), np.array([0.02]), np.array([0.2])
        )
        assert dv[0] == pytest.approx(0.04 * 65**2 - 5 * 65 + 140 + 13)
        assert du[0] == pytest.approx(0.02 * (0.2 * -65 + 13))

    def test_current_increases_dv(self):
        dv0, _ = izhikevich_derivatives(np.array([-65.0]), np.array([-13.0]), np.array([0.0]), np.array([0.02]), np.array([0.2]))
        dv1, _ = izhikevich_derivatives(np.array([-65.0]), np.array([-13.0]), np.array([10.0]), np.array([0.02]), np.array([0.2]))
        assert dv1[0] > dv0[0]


class TestEulerStep:
    def _params(self, n=1):
        return (
            np.full(n, 0.02),
            np.full(n, 0.2),
            np.full(n, -65.0),
            np.full(n, 8.0),
        )

    def test_inputs_not_mutated(self):
        a, b, c, d = self._params()
        v = np.array([-65.0])
        u = np.array([-13.0])
        euler_step(v, u, np.array([10.0]), a, b, c, d)
        assert v[0] == -65.0 and u[0] == -13.0

    def test_threshold_reset(self):
        a, b, c, d = self._params()
        v = np.array([31.0])
        u = np.array([-10.0])
        v2, u2, fired = euler_step(v, u, np.array([0.0]), a, b, c, d)
        assert fired[0]
        assert u2[0] > -10.0  # d added
        # v was reset to c before integrating, so it is near c afterwards.
        assert v2[0] < 0.0

    def test_no_spike_below_threshold(self):
        a, b, c, d = self._params()
        _, _, fired = euler_step(np.array([-65.0]), np.array([-13.0]), np.array([0.0]), a, b, c, d)
        assert not fired[0]

    def test_substep_count_changes_result(self):
        a, b, c, d = self._params()
        v1, _, _ = euler_step(np.array([-60.0]), np.array([-13.0]), np.array([10.0]), a, b, c, d, v_substeps=1)
        v2, _, _ = euler_step(np.array([-60.0]), np.array([-13.0]), np.array([10.0]), a, b, c, d, v_substeps=4)
        assert v1[0] != v2[0]


class TestPopulation:
    def test_from_parameters_resting_state(self):
        pop = IzhikevichPopulation.from_parameters([0.02], [0.2], [-65.0], [8.0])
        assert pop.v[0] == -65.0
        assert pop.u[0] == pytest.approx(0.2 * -65.0)
        assert pop.size == 1

    def test_tonic_spiking_rate(self):
        pop = IzhikevichPopulation.from_parameters([0.02], [0.2], [-65.0], [8.0])
        spikes = 0
        for _ in range(1000):
            spikes += int(pop.step(np.array([10.0]))[0])
        assert 5 <= spikes <= 120

    def test_no_input_no_spikes(self):
        pop = IzhikevichPopulation.from_parameters([0.02], [0.2], [-65.0], [8.0])
        spikes = sum(int(pop.step(np.array([0.0]))[0]) for _ in range(500))
        assert spikes == 0

    def test_vectorised_population(self):
        n = 50
        pop = IzhikevichPopulation.from_parameters(
            np.full(n, 0.02), np.full(n, 0.2), np.full(n, -65.0), np.full(n, 8.0)
        )
        currents = np.linspace(0.0, 20.0, n)
        total = np.zeros(n)
        for _ in range(500):
            total += pop.step(currents)
        # Higher drive -> more spikes (monotone in aggregate).
        assert total[-10:].sum() > total[:10].sum()

    def test_fired_mask_property(self):
        pop = IzhikevichPopulation.from_parameters([0.02], [0.2], [-65.0], [8.0])
        pop.v[0] = 35.0
        assert pop.fired()[0]
