"""Tests for synaptic containers, current state and the network engine."""

import numpy as np
import pytest
from scipy import sparse

from repro.snn import (
    CurrentState,
    DenseSynapses,
    FixedPointPopulation,
    IzhikevichPopulation,
    SNNNetwork,
    SparseSynapses,
)


class TestDenseSynapses:
    def test_propagation(self):
        weights = np.array([[0.0, 1.0, 2.0], [3.0, 0.0, 4.0], [5.0, 6.0, 0.0]])
        syn = DenseSynapses(weights)
        fired = np.array([True, False, True])
        np.testing.assert_allclose(syn.propagate(fired), [2.0, 7.0, 5.0])

    def test_no_spikes_gives_zero(self):
        syn = DenseSynapses(np.ones((4, 4)))
        np.testing.assert_allclose(syn.propagate(np.zeros(4, dtype=bool)), np.zeros(4))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DenseSynapses(np.ones(3))
        with pytest.raises(ValueError):
            DenseSynapses(np.ones((3, 3))).propagate(np.zeros(4, dtype=bool))

    def test_counts(self):
        syn = DenseSynapses(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert syn.num_synapses == 2
        assert syn.num_pre == 2 and syn.num_post == 2


class TestSparseSynapses:
    def test_from_triplets(self):
        syn = SparseSynapses.from_triplets([(0, 1, -2.0), (0, 2, -3.0), (1, 0, 1.0)], num_neurons=3)
        out = syn.propagate(np.array([True, False, False]))
        np.testing.assert_allclose(out, [0.0, -2.0, -3.0])

    def test_degrees(self):
        syn = SparseSynapses.from_triplets([(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)], num_neurons=3)
        np.testing.assert_array_equal(syn.out_degree(), [2, 1, 0])
        np.testing.assert_array_equal(syn.in_degree(), [0, 1, 2])

    def test_matches_dense(self):
        rng = np.random.default_rng(0)
        dense = rng.random((20, 20)) * (rng.random((20, 20)) < 0.2)
        ds = DenseSynapses(dense)
        ss = SparseSynapses(sparse.csc_matrix(dense))
        fired = rng.random(20) < 0.3
        np.testing.assert_allclose(ds.propagate(fired), ss.propagate(fired), atol=1e-12)


class TestCurrentState:
    def test_recompute_mode(self):
        state = CurrentState(num_neurons=3, mode="recompute")
        out1 = state.update(np.array([1.0, 2.0, 3.0]), np.zeros(3))
        out2 = state.update(np.array([1.0, 1.0, 1.0]), np.array([0.5, 0.5, 0.5]))
        np.testing.assert_allclose(out1, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(out2, [1.5, 1.5, 1.5])  # no accumulation

    def test_decay_mode_accumulates(self):
        state = CurrentState(num_neurons=1, mode="decay", tau_select=2)
        first = state.update(np.array([4.0]), np.zeros(1))[0]
        second = state.update(np.array([4.0]), np.zeros(1))[0]
        assert second > first  # persistent current builds up

    def test_decay_mode_decays_without_input(self):
        state = CurrentState(num_neurons=1, mode="decay", tau_select=2)
        state.update(np.array([10.0]), np.zeros(1))
        values = [state.update(np.zeros(1), np.zeros(1))[0] for _ in range(30)]
        assert values[-1] < values[0]
        assert values[-1] >= 0.0

    def test_reset(self):
        state = CurrentState(num_neurons=2, mode="decay")
        state.update(np.array([5.0, 5.0]), np.zeros(2))
        state.reset()
        np.testing.assert_allclose(state.current, 0.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CurrentState(num_neurons=1, mode="magic")


class TestSNNNetwork:
    def _float_population(self, n):
        return IzhikevichPopulation.from_parameters(
            np.full(n, 0.02), np.full(n, 0.2), np.full(n, -65.0), np.full(n, 8.0)
        )

    def test_unconnected_population_driven_by_external(self):
        net = SNNNetwork(self._float_population(5), external_input=lambda t: np.full(5, 12.0))
        raster = net.run(400)
        assert raster.num_spikes > 0
        assert raster.num_neurons == 5 and raster.num_steps == 400

    def test_without_input_is_silent(self):
        net = SNNNetwork(self._float_population(5))
        assert net.run(200).num_spikes == 0

    def test_recurrent_excitation_increases_activity(self):
        rng = np.random.default_rng(1)
        drive = lambda t: 6.0 + rng.standard_normal(20)  # noqa: E731
        isolated = SNNNetwork(self._float_population(20), external_input=drive)
        coupled = SNNNetwork(
            self._float_population(20),
            synapses=DenseSynapses(np.full((20, 20), 2.0)),
            external_input=lambda t: 6.0 + np.random.default_rng(1).standard_normal(20),
        )
        assert coupled.run(300).num_spikes >= isolated.run(300).num_spikes

    def test_fixed_point_backend(self):
        pop = FixedPointPopulation.from_float_parameters(
            np.full(5, 0.02), np.full(5, 0.2), np.full(5, -65.0), np.full(5, 8.0)
        )
        net = SNNNetwork(pop, external_input=lambda t: np.full(5, 12.0))
        assert net.is_fixed_point
        assert net.run(300).num_spikes > 0

    def test_progress_callback(self):
        seen = []
        net = SNNNetwork(self._float_population(3), external_input=lambda t: np.full(3, 10.0))
        net.run(10, progress_callback=lambda t, fired: seen.append(t))
        assert seen == list(range(10))

    def test_record_false_returns_empty_raster(self):
        net = SNNNetwork(self._float_population(3), external_input=lambda t: np.full(3, 10.0))
        raster = net.run(50, record=False)
        assert raster.num_spikes == 0 and raster.num_steps == 50

    def test_reset_currents(self):
        net = SNNNetwork(self._float_population(3), current_mode="decay")
        net.step(0)
        net.reset_currents()
        np.testing.assert_allclose(net.current_state.current, 0.0)
