"""Determinism and ordering guarantees of the SweepExecutor."""

import numpy as np
import pytest

from repro.runtime import SweepExecutor, SweepTask, derive_task_seed


def _echo_task(task: SweepTask):
    """Module-level (picklable) task: derived seed drives an RNG draw."""
    rng = np.random.default_rng(task.seed)
    return {
        "index": task.index,
        "seed": task.seed,
        "value": float(rng.uniform()),
        "params": dict(task.params),
    }


def _functional_window_task(task: SweepTask):
    """ISA-level task: run a tiny generated workload on the functional ISS."""
    from repro.codegen import build_eighty_twenty_workload

    workload = build_eighty_twenty_workload(
        num_neurons=int(task.params["num_neurons"]),
        num_steps=int(task.params["num_steps"]),
        kind="extension",
        seed=task.seed % (2**31),
    )
    fsim = workload.make_simulator()
    fsim.run()
    return {"instret": fsim.instret, "spikes": workload.total_spikes(fsim)}


class TestSeedDerivation:
    def test_derived_seeds_are_deterministic(self):
        assert derive_task_seed(42, 0) == derive_task_seed(42, 0)
        assert derive_task_seed(42, 0) != derive_task_seed(42, 1)
        assert derive_task_seed(42, 0) != derive_task_seed(43, 0)

    def test_tasks_carry_derived_seeds(self):
        tasks = SweepExecutor.make_tasks([{"x": 1}, {"x": 2}], base_seed=9)
        assert [t.index for t in tasks] == [0, 1]
        assert tasks[0].seed == derive_task_seed(9, 0)
        assert tasks[1].seed == derive_task_seed(9, 1)
        assert tasks[1].params == {"x": 2}


class TestExecutionModes:
    PARAMS = [{"name": f"task-{i}"} for i in range(5)]

    def test_serial_results_in_task_order(self):
        results = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        assert [r["index"] for r in results] == list(range(5))
        assert [r["params"]["name"] for r in results] == [p["name"] for p in self.PARAMS]

    def test_serial_is_repeatable(self):
        first = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        second = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        assert first == second

    def test_process_pool_matches_serial(self):
        serial = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        pooled = SweepExecutor(mode="process", max_workers=2).run(
            _echo_task, self.PARAMS, base_seed=3
        )
        assert pooled == serial

    def test_functional_sweep_deterministic_across_modes(self):
        params = [{"num_neurons": 8, "num_steps": 1}, {"num_neurons": 12, "num_steps": 1}]
        serial = SweepExecutor().run(_functional_window_task, params, base_seed=17)
        pooled = SweepExecutor(mode="process", max_workers=2).run(
            _functional_window_task, params, base_seed=17
        )
        assert pooled == serial
        assert all(r["instret"] > 0 for r in serial)

    def test_empty_sweep(self):
        assert SweepExecutor().run(_echo_task, []) == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(mode="threads")

    def test_map_seeds_uses_given_seeds(self):
        results = SweepExecutor().map_seeds(_echo_task, [100, 200], extra={"tag": "s"})
        assert [r["seed"] for r in results] == [100, 200]
        assert all(r["params"]["tag"] == "s" for r in results)


class TestPicklingFallback:
    """Process mode degrades to a warned serial run for unpicklable tasks."""

    def test_lambda_falls_back_to_serial(self):
        executor = SweepExecutor(mode="process", max_workers=2)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = executor.run(
                lambda task: {"index": task.index, "seed": task.seed},
                [{"x": 1}, {"x": 2}, {"x": 3}],
                base_seed=5,
            )
        assert [r["index"] for r in results] == [0, 1, 2]
        assert results[0]["seed"] == derive_task_seed(5, 0)

    def test_fallback_matches_serial_mode(self):
        fn = lambda task: task.seed * 2  # noqa: E731 - intentionally unpicklable
        params = [{"i": i} for i in range(4)]
        with pytest.warns(RuntimeWarning):
            pooled = SweepExecutor(mode="process", max_workers=2).run(fn, params, base_seed=1)
        serial = SweepExecutor().run(fn, params, base_seed=1)
        assert pooled == serial

    def test_closure_falls_back_too(self):
        scale = 3

        def closure_task(task):
            return task.index * scale

        with pytest.warns(RuntimeWarning):
            results = SweepExecutor(mode="process", max_workers=2).run(
                closure_task, [{}, {}, {}]
            )
        assert results == [0, 3, 6]

    def test_warns_only_once_per_executor(self):
        import warnings as warnings_mod

        executor = SweepExecutor(mode="process", max_workers=2)
        fn = lambda task: task.index  # noqa: E731
        with pytest.warns(RuntimeWarning):
            executor.run(fn, [{}, {}])
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert executor.run(fn, [{}, {}]) == [0, 1]  # silent second time

    def test_picklable_functions_still_use_the_pool(self):
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            results = SweepExecutor(mode="process", max_workers=2).run(
                _echo_task, [{"a": 1}, {"a": 2}], base_seed=3
            )
        assert len(results) == 2

    def test_unpicklable_param_in_later_task_falls_back(self):
        # Task 0 pickles fine; task 1 carries an unpicklable lock.  The
        # pre-flight must cover every task, not just the first.
        import threading

        params = [{"x": 1}, {"x": threading.Lock()}]
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = SweepExecutor(mode="process", max_workers=2).run(_echo_task, params)
        assert [r["index"] for r in results] == [0, 1]
