"""Determinism and ordering guarantees of the SweepExecutor."""

import warnings as warnings_mod

import numpy as np
import pytest

from repro.runtime import SweepExecutor, SweepSpec, SweepTask, derive_task_seed


def _echo_task(task: SweepTask):
    """Module-level (picklable) task: derived seed drives an RNG draw."""
    rng = np.random.default_rng(task.seed)
    return {
        "index": task.index,
        "seed": task.seed,
        "value": float(rng.uniform()),
        "params": dict(task.params),
    }


def _functional_window_task(task: SweepTask):
    """ISA-level task: run a tiny generated workload on the functional ISS."""
    from repro.codegen import build_eighty_twenty_workload

    workload = build_eighty_twenty_workload(
        num_neurons=int(task.params["num_neurons"]),
        num_steps=int(task.params["num_steps"]),
        kind="extension",
        seed=task.seed % (2**31),
    )
    fsim = workload.make_simulator()
    fsim.run()
    return {"instret": fsim.instret, "spikes": workload.total_spikes(fsim)}


class TestSeedDerivation:
    def test_derived_seeds_are_deterministic(self):
        assert derive_task_seed(42, 0) == derive_task_seed(42, 0)
        assert derive_task_seed(42, 0) != derive_task_seed(42, 1)
        assert derive_task_seed(42, 0) != derive_task_seed(43, 0)

    def test_tasks_carry_derived_seeds(self):
        tasks = SweepExecutor.make_tasks([{"x": 1}, {"x": 2}], base_seed=9)
        assert [t.index for t in tasks] == [0, 1]
        assert tasks[0].seed == derive_task_seed(9, 0)
        assert tasks[1].seed == derive_task_seed(9, 1)
        assert tasks[1].params == {"x": 2}

    def test_spec_tasks_match_make_tasks(self):
        spec = SweepSpec(fn=_echo_task, param_sets=[{"x": 1}, {"x": 2}], base_seed=9)
        assert spec.tasks() == SweepExecutor.make_tasks([{"x": 1}, {"x": 2}], base_seed=9)


class TestSweepSpecValidation:
    def test_requires_exactly_one_of_param_sets_and_seeds(self):
        with pytest.raises(ValueError):
            SweepSpec(fn=_echo_task)
        with pytest.raises(ValueError):
            SweepSpec(fn=_echo_task, param_sets=[{}], seeds=[1])

    def test_rejects_non_callable_fn(self):
        with pytest.raises(TypeError):
            SweepSpec(fn="not-a-function", param_sets=[{}])

    def test_rejects_bad_chunking(self):
        with pytest.raises(ValueError):
            SweepSpec(fn=_echo_task, param_sets=[{}], chunk_size=0)
        with pytest.raises(ValueError):
            SweepSpec(fn=_echo_task, param_sets=[{}], lease_timeout=0.0)

    def test_seed_form_puts_seed_only_in_task_seed(self):
        spec = SweepSpec(fn=_echo_task, seeds=[100, 200], extra={"tag": "s"})
        tasks = spec.tasks()
        assert [t.seed for t in tasks] == [100, 200]
        assert all(t.params == {"tag": "s"} for t in tasks)
        assert all("seed" not in t.params for t in tasks)


class TestExecutionModes:
    PARAMS = [{"name": f"task-{i}"} for i in range(5)]

    def _spec(self, **kwargs):
        kwargs.setdefault("fn", _echo_task)
        kwargs.setdefault("param_sets", self.PARAMS)
        kwargs.setdefault("base_seed", 3)
        return SweepSpec(**kwargs)

    def test_serial_results_in_task_order(self):
        report = SweepExecutor().execute(self._spec())
        assert report.mode == "serial"
        assert [r["index"] for r in report.results] == list(range(5))
        assert [r["params"]["name"] for r in report.results] == [
            p["name"] for p in self.PARAMS
        ]

    def test_serial_is_repeatable(self):
        first = SweepExecutor().execute(self._spec())
        second = SweepExecutor().execute(self._spec())
        assert first.results == second.results

    def test_process_pool_matches_serial(self):
        serial = SweepExecutor().execute(self._spec())
        pooled = SweepExecutor(mode="process", max_workers=2).execute(self._spec())
        assert pooled.results == serial.results
        assert pooled.mode == "process"

    def test_functional_sweep_deterministic_across_modes(self):
        params = [{"num_neurons": 8, "num_steps": 1}, {"num_neurons": 12, "num_steps": 1}]
        spec = SweepSpec(fn=_functional_window_task, param_sets=params, base_seed=17)
        serial = SweepExecutor().execute(spec)
        pooled = SweepExecutor(mode="process", max_workers=2).execute(spec)
        assert pooled.results == serial.results
        assert all(r["instret"] > 0 for r in serial.results)

    def test_empty_sweep(self):
        report = SweepExecutor().execute(self._spec(param_sets=[]))
        assert report.results == []
        assert report.records == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(mode="threads")

    def test_seeds_spec_uses_given_seeds(self):
        report = SweepExecutor().execute(
            SweepSpec(fn=_echo_task, seeds=[100, 200], extra={"tag": "s"})
        )
        assert [r["seed"] for r in report.results] == [100, 200]
        assert all(r["params"]["tag"] == "s" for r in report.results)

    def test_report_records_cover_every_task(self):
        report = SweepExecutor().execute(self._spec())
        assert [rec.index for rec in report.records] == list(range(5))
        assert all(rec.attempts == 1 for rec in report.records)
        assert report.lease_retries == 0


class TestDeprecatedWrappers:
    """run()/map_seeds() still work but warn and delegate to execute()."""

    def test_run_warns_and_matches_execute(self):
        params = [{"x": 1}, {"x": 2}]
        with pytest.warns(DeprecationWarning, match=r"SweepExecutor\.run"):
            legacy = SweepExecutor().run(_echo_task, params, base_seed=3)
        report = SweepExecutor().execute(
            SweepSpec(fn=_echo_task, param_sets=params, base_seed=3)
        )
        assert legacy == report.results

    def test_map_seeds_warns_and_matches_execute(self):
        with pytest.warns(DeprecationWarning, match=r"SweepExecutor\.map_seeds"):
            legacy = SweepExecutor().map_seeds(_echo_task, [100, 200], extra={"tag": "s"})
        report = SweepExecutor().execute(
            SweepSpec(fn=_echo_task, seeds=[100, 200], extra={"tag": "s"})
        )
        assert legacy == report.results

    def test_map_seeds_no_longer_duplicates_seed_into_params(self):
        with pytest.warns(DeprecationWarning):
            results = SweepExecutor().map_seeds(_echo_task, [100], extra={"tag": "s"})
        assert results[0]["seed"] == 100
        assert "seed" not in results[0]["params"]


class TestPicklingFallback:
    """Process mode degrades to a warned serial run for unpicklable tasks."""

    def test_lambda_falls_back_to_serial(self):
        executor = SweepExecutor(mode="process", max_workers=2)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            report = executor.execute(
                SweepSpec(
                    fn=lambda task: {"index": task.index, "seed": task.seed},
                    param_sets=[{"x": 1}, {"x": 2}, {"x": 3}],
                    base_seed=5,
                )
            )
        assert [r["index"] for r in report.results] == [0, 1, 2]
        assert report.results[0]["seed"] == derive_task_seed(5, 0)
        assert report.pickle_fallback

    def test_fallback_matches_serial_mode(self):
        fn = lambda task: task.seed * 2  # noqa: E731 - intentionally unpicklable
        params = [{"i": i} for i in range(4)]
        spec = SweepSpec(fn=fn, param_sets=params, base_seed=1)
        with pytest.warns(RuntimeWarning):
            pooled = SweepExecutor(mode="process", max_workers=2).execute(spec)
        serial = SweepExecutor().execute(spec)
        assert pooled.results == serial.results

    def test_closure_falls_back_too(self):
        scale = 3

        def closure_task(task):
            return task.index * scale

        with pytest.warns(RuntimeWarning):
            report = SweepExecutor(mode="process", max_workers=2).execute(
                SweepSpec(fn=closure_task, param_sets=[{}, {}, {}])
            )
        assert report.results == [0, 3, 6]

    def test_warns_only_once_per_executor(self):
        executor = SweepExecutor(mode="process", max_workers=2)
        fn = lambda task: task.index  # noqa: E731
        spec = SweepSpec(fn=fn, param_sets=[{}, {}])
        with pytest.warns(RuntimeWarning):
            executor.execute(spec)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert executor.execute(spec).results == [0, 1]  # silent second time

    def test_picklable_functions_still_use_the_pool(self):
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            report = SweepExecutor(mode="process", max_workers=2).execute(
                SweepSpec(fn=_echo_task, param_sets=[{"a": 1}, {"a": 2}], base_seed=3)
            )
        assert len(report.results) == 2
        assert not report.pickle_fallback

    def test_unpicklable_param_in_later_task_falls_back(self):
        # Task 0 pickles fine; task 1 carries an unpicklable lock.  The
        # pre-flight only covers fn and the first task, so this one is
        # caught at chunk-dispatch time and must still degrade cleanly.
        import threading

        params = [{"x": 1}, {"x": threading.Lock()}]
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            report = SweepExecutor(mode="process", max_workers=2).execute(
                SweepSpec(fn=_echo_task, param_sets=params)
            )
        assert [r["index"] for r in report.results] == [0, 1]
