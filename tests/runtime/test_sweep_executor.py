"""Determinism and ordering guarantees of the SweepExecutor."""

import numpy as np
import pytest

from repro.runtime import SweepExecutor, SweepTask, derive_task_seed


def _echo_task(task: SweepTask):
    """Module-level (picklable) task: derived seed drives an RNG draw."""
    rng = np.random.default_rng(task.seed)
    return {
        "index": task.index,
        "seed": task.seed,
        "value": float(rng.uniform()),
        "params": dict(task.params),
    }


def _functional_window_task(task: SweepTask):
    """ISA-level task: run a tiny generated workload on the functional ISS."""
    from repro.codegen import build_eighty_twenty_workload

    workload = build_eighty_twenty_workload(
        num_neurons=int(task.params["num_neurons"]),
        num_steps=int(task.params["num_steps"]),
        kind="extension",
        seed=task.seed % (2**31),
    )
    fsim = workload.make_simulator()
    fsim.run()
    return {"instret": fsim.instret, "spikes": workload.total_spikes(fsim)}


class TestSeedDerivation:
    def test_derived_seeds_are_deterministic(self):
        assert derive_task_seed(42, 0) == derive_task_seed(42, 0)
        assert derive_task_seed(42, 0) != derive_task_seed(42, 1)
        assert derive_task_seed(42, 0) != derive_task_seed(43, 0)

    def test_tasks_carry_derived_seeds(self):
        tasks = SweepExecutor.make_tasks([{"x": 1}, {"x": 2}], base_seed=9)
        assert [t.index for t in tasks] == [0, 1]
        assert tasks[0].seed == derive_task_seed(9, 0)
        assert tasks[1].seed == derive_task_seed(9, 1)
        assert tasks[1].params == {"x": 2}


class TestExecutionModes:
    PARAMS = [{"name": f"task-{i}"} for i in range(5)]

    def test_serial_results_in_task_order(self):
        results = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        assert [r["index"] for r in results] == list(range(5))
        assert [r["params"]["name"] for r in results] == [p["name"] for p in self.PARAMS]

    def test_serial_is_repeatable(self):
        first = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        second = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        assert first == second

    def test_process_pool_matches_serial(self):
        serial = SweepExecutor().run(_echo_task, self.PARAMS, base_seed=3)
        pooled = SweepExecutor(mode="process", max_workers=2).run(
            _echo_task, self.PARAMS, base_seed=3
        )
        assert pooled == serial

    def test_functional_sweep_deterministic_across_modes(self):
        params = [{"num_neurons": 8, "num_steps": 1}, {"num_neurons": 12, "num_steps": 1}]
        serial = SweepExecutor().run(_functional_window_task, params, base_seed=17)
        pooled = SweepExecutor(mode="process", max_workers=2).run(
            _functional_window_task, params, base_seed=17
        )
        assert pooled == serial
        assert all(r["instret"] > 0 for r in serial)

    def test_empty_sweep(self):
        assert SweepExecutor().run(_echo_task, []) == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(mode="threads")

    def test_map_seeds_uses_given_seeds(self):
        results = SweepExecutor().map_seeds(_echo_task, [100, 200], extra={"tag": "s"})
        assert [r["seed"] for r in results] == [100, 200]
        assert all(r["params"]["tag"] == "s" for r in results)
