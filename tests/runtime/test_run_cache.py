"""The content-addressed on-disk RunResult cache."""

import pickle

import pytest

from repro.runtime import (
    RunRequest,
    RunResult,
    RunResultCache,
    run_many_on_backend,
    run_on_backend,
)
from repro.runtime.backends import _REGISTRY, register_backend
from repro.runtime.cache import UncacheableRequestError, _token, code_fingerprint


class CountingBackend:
    """A deterministic stub backend that counts its executions."""

    name = "counting-test"
    description = "cache test stub"
    level = "isa"
    supports_batching = False

    def __init__(self):
        self.runs = 0

    def build_network(self, request):
        return None

    def run(self, request):
        self.runs += 1
        return RunResult(
            backend=self.name,
            workload=request.workload,
            num_steps=request.num_steps,
            total_spikes=request.seed * 10,
            metrics={"seed": float(request.seed)},
        )


@pytest.fixture
def counting_backend():
    backend = CountingBackend()
    register_backend(backend, replace=True)
    yield backend
    _REGISTRY.pop(backend.name, None)


class TestCacheServesRepeatedRuns:
    def test_repeated_run_on_backend_hits_cache(self, counting_backend, tmp_path):
        cache = RunResultCache(tmp_path)
        request = RunRequest(num_neurons=10, num_steps=5, seed=3)
        first = run_on_backend("counting-test", request, cache=cache)
        second = run_on_backend("counting-test", request, cache=cache)
        assert counting_backend.runs == 1          # second run never hit the backend
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert second.total_spikes == first.total_spikes == 30
        assert second.metrics == first.metrics

    def test_cache_distinguishes_requests_and_backends(self, counting_backend, tmp_path):
        cache = RunResultCache(tmp_path)
        base = RunRequest(num_neurons=10, num_steps=5, seed=3)
        run_on_backend("counting-test", base, cache=cache)
        run_on_backend("counting-test", RunRequest(num_neurons=10, num_steps=5, seed=4), cache=cache)
        run_on_backend("counting-test", RunRequest(num_neurons=10, num_steps=6, seed=3), cache=cache)
        options = RunRequest(num_neurons=10, num_steps=5, seed=3, options={"kind": "baseline"})
        run_on_backend("counting-test", options, cache=cache)
        assert counting_backend.runs == 4
        key_a = cache.key_for("counting-test", base)
        key_b = cache.key_for("other-backend", base)
        assert key_a != key_b

    def test_cache_off_by_default(self, counting_backend, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
        request = RunRequest(num_neurons=10, num_steps=5, seed=3)
        run_on_backend("counting-test", request)
        run_on_backend("counting-test", request)
        assert counting_backend.runs == 2

    def test_env_switch_enables_default_cache(self, counting_backend, tmp_path, monkeypatch):
        import repro.runtime.cache as cache_mod

        monkeypatch.setenv("REPRO_RUN_CACHE", "1")
        monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path / "env-cache"))
        monkeypatch.setattr(cache_mod, "_DEFAULT", None)
        request = RunRequest(num_neurons=10, num_steps=5, seed=3)
        run_on_backend("counting-test", request)
        run_on_backend("counting-test", request)
        assert counting_backend.runs == 1
        assert (tmp_path / "env-cache").is_dir()

    def test_uncacheable_options_bypass_cleanly(self, counting_backend, tmp_path):
        cache = RunResultCache(tmp_path)
        request = RunRequest(num_neurons=10, num_steps=5, seed=3, options={"hook": lambda: 1})
        run_on_backend("counting-test", request, cache=cache)
        run_on_backend("counting-test", request, cache=cache)
        assert counting_backend.runs == 2
        assert cache.uncacheable == 2
        assert cache.hits == cache.misses == cache.stores == 0

    def test_corrupt_entry_is_a_miss(self, counting_backend, tmp_path):
        cache = RunResultCache(tmp_path)
        request = RunRequest(num_neurons=10, num_steps=5, seed=3)
        run_on_backend("counting-test", request, cache=cache)
        key = cache.key_for("counting-test", request)
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        result = run_on_backend("counting-test", request, cache=cache)
        assert counting_backend.runs == 2
        assert result.total_spikes == 30
        assert not path.read_bytes() == b"not a pickle"  # rewritten

    def test_clear_empties_the_store(self, counting_backend, tmp_path):
        cache = RunResultCache(tmp_path)
        request = RunRequest(num_neurons=10, num_steps=5, seed=3)
        run_on_backend("counting-test", request, cache=cache)
        cache.clear()
        run_on_backend("counting-test", request, cache=cache)
        assert counting_backend.runs == 2


class TestRealBackendThroughCache:
    def test_functional_backend_round_trips(self, tmp_path):
        cache = RunResultCache(tmp_path)
        request = RunRequest(num_neurons=12, num_steps=1, seed=3)
        fresh = run_on_backend("functional", request, cache=cache)
        cached = run_on_backend("functional", request, cache=cache)
        assert cache.hits == 1
        assert cached.backend == fresh.backend
        assert cached.total_spikes == fresh.total_spikes
        assert cached.metrics == fresh.metrics

    def test_network_backend_raster_round_trips(self, tmp_path):
        import numpy as np

        cache = RunResultCache(tmp_path)
        request = RunRequest(num_neurons=40, num_steps=20, seed=5)
        fresh = run_on_backend("fixed", request, cache=cache)
        cached = run_on_backend("fixed", request, cache=cache)
        assert cache.hits == 1
        np.testing.assert_array_equal(cached.raster.times, fresh.raster.times)
        np.testing.assert_array_equal(cached.raster.neuron_ids, fresh.raster.neuron_ids)

    def test_run_many_on_backend_served_from_cache(self, counting_backend, tmp_path):
        cache = RunResultCache(tmp_path)
        requests = [RunRequest(num_neurons=10, num_steps=5, seed=s) for s in (1, 2, 3)]
        first = run_many_on_backend("counting-test", requests, cache=cache)
        second = run_many_on_backend("counting-test", requests, cache=cache)
        assert counting_backend.runs == 3          # the whole second sweep was cached
        assert [r.total_spikes for r in first] == [r.total_spikes for r in second] == [10, 20, 30]


class TestKeyDerivation:
    def test_token_canonicalises_common_shapes(self):
        import numpy as np

        assert _token({"b": 1, "a": 2}) == _token({"a": 2, "b": 1})
        assert _token((1, 2)) == _token([1, 2])
        array_token = _token(np.arange(4))
        assert array_token == _token(np.arange(4))
        assert array_token != _token(np.arange(5))
        with pytest.raises(UncacheableRequestError):
            _token(object())

    def test_token_distinguishes_mapping_key_types(self):
        # int 1 and str "1" are different requests, not the same key.
        assert _token({1: "a"}) != _token({"1": "a"})
        # Unorderable token pairs must still sort (by serialised form),
        # not raise TypeError.
        token = _token({1: {"x": 1}, "1": {"y": 2}})
        assert len(token["__mapping__"]) == 2

    def test_unsetting_env_dir_restores_default_root(self, tmp_path, monkeypatch):
        import repro.runtime.cache as cache_mod
        from repro.runtime.cache import default_cache

        monkeypatch.setattr(cache_mod, "_DEFAULT", None)
        monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path))
        assert default_cache().root == tmp_path
        monkeypatch.delenv("REPRO_RUN_CACHE_DIR")
        from pathlib import Path

        assert default_cache().root == Path.home() / ".cache" / "izhirisc-repro" / "runs"

    def test_request_dataclass_tokenises(self):
        token = _token(RunRequest(num_neurons=8, num_steps=2, seed=1))
        assert token["__dataclass__"] == "RunRequest"

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_cache_key_includes_code_fingerprint(self, tmp_path, monkeypatch):
        import repro.runtime.cache as cache_mod

        cache = RunResultCache(tmp_path)
        request = RunRequest(num_neurons=8, num_steps=2, seed=1)
        key_before = cache.key_for("functional", request)
        monkeypatch.setattr(cache_mod, "_FINGERPRINT", "0" * 64)
        assert cache.key_for("functional", request) != key_before

    def test_results_pickle_with_highest_protocol(self):
        result = RunResult(backend="x", workload="w", num_steps=1, total_spikes=0)
        assert pickle.loads(pickle.dumps(result, pickle.HIGHEST_PROTOCOL)) == result


class TestCacheTokenProtocol:
    def test_objects_with_cache_token_tokenise(self):
        class Structured:
            def __init__(self, payload):
                self.payload = payload

            def cache_token(self):
                return {"payload": self.payload}

        token = _token(Structured([1, 2]))
        assert token["__object__"].endswith("Structured")  # qualname of a local class
        assert token == _token(Structured([1, 2]))
        assert token != _token(Structured([1, 3]))

    def test_constraint_graph_token_is_structural(self):
        from repro.csp.graph import ConstraintGraph, Variable

        def graph(name, var_names):
            g = ConstraintGraph(
                [Variable(n, (0, 1)) for n in var_names], name=name
            )
            g.add_conflict(var_names[0], 0, var_names[1], 0)
            return g

        a = graph("first", ["x", "y"])
        b = graph("second", ["p", "q"])  # same structure, different names
        assert _token(a) == _token(b)
        c = graph("third", ["x", "y"])
        c.add_conflict("x", 1, "y", 1)
        assert _token(a) != _token(c)  # extra edge changes the token

    def test_derive_cache_key_module_level(self, tmp_path):
        from repro.runtime.cache import derive_cache_key

        key = derive_cache_key("serve", {"a": 1})
        assert key == derive_cache_key("serve", {"a": 1})
        assert key != derive_cache_key("serve", {"a": 2})
        assert key != derive_cache_key("other", {"a": 1})
        assert derive_cache_key("serve", {"a": object()}) is None

    def test_get_expect_type_mismatch_is_a_miss(self, tmp_path):
        cache = RunResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {"wrong": "type"})
        assert cache.get(key, expect=RunResult) is None
        assert not cache._path(key).exists()
        result = RunResult(backend="x", workload="w", num_steps=1, total_spikes=0)
        cache.put(key, result)
        assert cache.get(key, expect=RunResult) == result
