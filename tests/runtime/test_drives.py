"""Compiled batched drives: bit-identity with the per-replica closures.

The drive compiler's contract: a compiled ``(B, N)`` provider produces,
for every replica and every step, exactly the array the replica's own
closure would have returned — per-replica RNG streams included.  The
chunked pregeneration this relies on (``standard_normal((K, N))`` equals
``K`` successive ``standard_normal(N)`` draws) is pinned down explicitly,
since the whole bit-exactness story of the compiled drives rests on it.
"""

import numpy as np
import pytest

from repro.csp import CSPConfig, SpikingCSPSolver
from repro.csp.scenarios import make_instance
from repro.runtime import BatchedNetwork, BatchIncompatibleError
from repro.runtime.drives import (
    AnnealedNoiseSpec,
    CompiledAnnealedDrive,
    CompiledScaledDrive,
    ScaledNoiseSpec,
    compile_batched_external,
)
from repro.snn import EightyTwentyConfig, build_eighty_twenty


def _csp_networks(seeds, *, scenario="coloring", instance_seed=3):
    graph, clamps = make_instance(scenario, seed=instance_seed, num_vertices=8, num_colors=3)
    networks = []
    for seed in seeds:
        solver = SpikingCSPSolver(graph, seed=int(seed))
        networks.append(solver.build_network(clamps))
    return networks


class TestChunkedStreamEquivalence:
    def test_block_draws_match_stepwise_draws(self):
        # The foundation: Generator.standard_normal fills outputs
        # sequentially from one stream, independent of the output shape.
        stepwise = np.random.default_rng(123)
        blocked = np.random.default_rng(123)
        expected = np.stack([stepwise.standard_normal(37) for _ in range(24)])
        got = blocked.standard_normal((24, 37))
        np.testing.assert_array_equal(expected, got)

    def test_out_parameter_matches_allocation(self):
        a = np.random.default_rng(7).standard_normal((5, 11))
        buf = np.empty((5, 11))
        np.random.default_rng(7).standard_normal(out=buf)
        np.testing.assert_array_equal(a, buf)


class TestCompiledAnnealedDrive:
    @pytest.mark.parametrize("chunk_steps", [1, 4, 32])
    def test_bit_identical_to_closures(self, chunk_steps):
        seeds = [11, 12, 13]
        reference = [net.external_input for net in _csp_networks(seeds)]
        compiled = compile_batched_external(_csp_networks(seeds), chunk_steps=chunk_steps)
        assert isinstance(compiled, CompiledAnnealedDrive)
        assert compiled.batch_shape == (3, reference[0](1).shape[0])
        # Re-create the closures: the reference calls above consumed step 1.
        reference = [net.external_input for net in _csp_networks(seeds)]
        for step in range(1, 101):
            expected = np.stack([closure(step) for closure in reference])
            got = compiled(step)
            np.testing.assert_array_equal(expected, got)

    def test_compile_does_not_consume_closure_streams(self):
        networks = _csp_networks([21, 22])
        compiled = compile_batched_external(networks)
        compiled(1)
        compiled(2)
        # The closures' own generators were cloned, not consumed: calling
        # them now still yields the stream from its very beginning.
        fresh = [net.external_input for net in _csp_networks([21, 22])]
        for step in (1, 2, 3):
            for net, ref in zip(networks, fresh):
                np.testing.assert_array_equal(net.external_input(step), ref(step))

    def test_retain_keeps_survivor_streams(self):
        seeds = [31, 32, 33, 34]
        compiled = compile_batched_external(_csp_networks(seeds))
        reference = [net.external_input for net in _csp_networks(seeds)]
        for step in (1, 2, 3):
            np.testing.assert_array_equal(
                compiled(step), np.stack([c(step) for c in reference])
            )
        compiled.retain([0, 2])
        assert compiled.batch_shape[0] == 2
        survivors = [reference[0], reference[2]]
        for step in (4, 5, 6):
            np.testing.assert_array_equal(
                compiled(step), np.stack([c(step) for c in survivors])
            )

    def test_heterogeneous_anneal_config_is_not_compiled(self):
        graph, clamps = make_instance("coloring", seed=3, num_vertices=8, num_colors=3)
        a = SpikingCSPSolver(graph, CSPConfig(), seed=1).build_network(clamps)
        b = SpikingCSPSolver(
            graph, CSPConfig(anneal_period=50), seed=2
        ).build_network(clamps)
        assert compile_batched_external([a, b]) is None


class TestCompiledScaledDrive:
    def _definitions(self, seeds):
        return [
            build_eighty_twenty(
                EightyTwentyConfig(num_excitatory=40, num_inhibitory=10, seed=seed)
            )
            for seed in seeds
        ]

    def test_bit_identical_to_thalamic_input(self):
        seeds = [41, 42, 43]
        networks = [d.fixed_network() for d in self._definitions(seeds)]
        compiled = compile_batched_external(networks)
        assert isinstance(compiled, CompiledScaledDrive)
        reference = self._definitions(seeds)
        for step in range(40):
            expected = np.stack([d.thalamic_input(step) for d in reference])
            np.testing.assert_array_equal(compiled(step), expected)

    def test_compile_leaves_source_generators_untouched(self):
        definitions = self._definitions([51])
        networks = [definitions[0].fixed_network()]
        compiled = compile_batched_external(networks)
        for step in range(5):
            compiled(step)
        # The definition's generator must still be at its post-build
        # position: the first thalamic draw equals that of a twin
        # definition that was never compiled.
        twin = self._definitions([51])[0]
        np.testing.assert_array_equal(definitions[0].thalamic_input(0), twin.thalamic_input(0))


class TestCompileDispatch:
    def test_opaque_closures_are_not_compiled(self):
        networks = _csp_networks([1, 2])
        networks[1].external_input = lambda step: np.zeros(networks[1].size)
        assert compile_batched_external(networks) is None

    def test_zero_input_networks_are_not_compiled(self):
        networks = _csp_networks([1, 2])
        networks[0].external_input = None
        assert compile_batched_external(networks) is None

    def test_shared_generator_is_not_compiled(self):
        # Two networks off one 80-20 definition share its generator: run
        # per replica they would interleave one stream, which independent
        # clones cannot reproduce — so compilation must refuse.
        definition = build_eighty_twenty(
            EightyTwentyConfig(num_excitatory=40, num_inhibitory=10, seed=5)
        )
        networks = [definition.fixed_network(), definition.fixed_network()]
        assert compile_batched_external(networks) is None

    def test_mixed_drive_families_are_not_compiled(self):
        csp = _csp_networks([1])
        definition = build_eighty_twenty(
            EightyTwentyConfig(num_excitatory=40, num_inhibitory=10, seed=1)
        )
        assert compile_batched_external([csp[0], definition.fixed_network()]) is None


class TestConstructionTimeValidation:
    def test_declared_shape_mismatch_raises_at_construction(self):
        networks = _csp_networks([1, 2, 3])
        compiled = compile_batched_external(networks[:2])  # declares B=2
        with pytest.raises(BatchIncompatibleError):
            BatchedNetwork.from_networks(networks, batched_external=compiled)

    def test_declared_shape_match_passes(self):
        networks = _csp_networks([1, 2, 3])
        compiled = compile_batched_external(networks)
        batch = BatchedNetwork.from_networks(networks, batched_external=compiled)
        assert batch._ext_validated

    def test_plain_callable_validated_on_every_step(self):
        networks = _csp_networks([1, 2])
        size = networks[0].size

        def flaky_provider(step):
            # Correct shape on step 1, a single row afterwards — the
            # latter must raise, not broadcast silently.
            return np.zeros((2, size)) if step == 1 else np.zeros(size)

        batch = BatchedNetwork.from_networks(networks, batched_external=flaky_provider)
        batch.step(1)
        with pytest.raises(ValueError):
            batch.step(2)

    def test_unretainable_provider_rejected_before_any_mutation(self):
        networks = _csp_networks([1, 2])

        def provider(step):
            return np.zeros((2, networks[0].size))

        batch = BatchedNetwork.from_networks(networks, batched_external=provider)
        batch.step(1)
        with pytest.raises(BatchIncompatibleError):
            batch.retain([0])
        # The refused retain must leave the batch fully usable.
        assert batch.batch_size == 2
        assert batch.step(2).shape == (2, networks[0].size)


class TestSpecConstruction:
    def test_annealed_spec_attached_by_solver(self):
        net = _csp_networks([9])[0]
        spec = net.external_input.drive_spec
        assert isinstance(spec, AnnealedNoiseSpec)
        assert spec.drive.shape == (net.size,)
        assert spec.free_mask.dtype == bool

    def test_scaled_spec_recognised_from_bound_method(self):
        definition = build_eighty_twenty(
            EightyTwentyConfig(num_excitatory=40, num_inhibitory=10, seed=2)
        )
        compiled = compile_batched_external([definition.fixed_network()])
        assert isinstance(compiled, CompiledScaledDrive)

    def test_direct_spec_compilation(self):
        specs = [
            ScaledNoiseSpec(scale=np.full(16, 2.0), rng=np.random.default_rng(s))
            for s in (1, 2)
        ]
        compiled = CompiledScaledDrive(specs)
        out = compiled(0)
        assert out.shape == (2, 16)
