"""The SimBackend registry: one interface over four execution paths."""

import numpy as np
import pytest

from repro.runtime import (
    RunRequest,
    RunResult,
    SimBackend,
    available_backends,
    eighty_twenty_seed_sweep,
    get_backend,
    pooled_sudoku_sweep,
    register_backend,
    run_on_backend,
)
from repro.runtime.backends import _REGISTRY


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"float64", "fixed", "functional", "cycle"}

    def test_backends_satisfy_protocol(self):
        for name in available_backends():
            backend = get_backend(name)
            assert isinstance(backend, SimBackend)
            assert backend.level in ("network", "isa", "cycle")

    def test_unknown_backend_error_lists_known(self):
        with pytest.raises(KeyError, match="fixed"):
            get_backend("no-such-backend")

    def test_duplicate_registration_rejected(self):
        backend = get_backend("fixed")
        with pytest.raises(ValueError):
            register_backend(backend)
        # replace=True is the explicit override knob.
        register_backend(backend, replace=True)
        assert _REGISTRY["fixed"] is backend


class TestNetworkBackends:
    @pytest.mark.parametrize("name", ["float64", "fixed"])
    def test_eighty_twenty_run(self, name):
        result = run_on_backend(
            name, RunRequest(num_neurons=50, num_steps=60, seed=5)
        )
        assert isinstance(result, RunResult)
        assert result.backend == name
        assert result.raster is not None
        assert result.raster.num_steps == 60
        assert result.total_spikes == result.raster.num_spikes > 0
        assert result.metrics["mean_rate_hz"] > 0

    def test_network_backends_support_batching(self):
        backend = get_backend("fixed")
        assert backend.supports_batching
        request = RunRequest(num_neurons=40, num_steps=10, seed=1)
        network = backend.build_network(request)
        assert network is not None and network.size == 40

    def test_fixed_matches_direct_engine(self):
        # The backend is a thin veneer over the existing single-run API.
        from repro.snn import run_eighty_twenty, EightyTwentyConfig

        result = run_on_backend("fixed", RunRequest(num_neurons=50, num_steps=60, seed=5))
        config = EightyTwentyConfig(num_excitatory=40, num_inhibitory=10, seed=5)
        raster, _ = run_eighty_twenty(num_steps=60, backend="fixed", config=config)
        np.testing.assert_array_equal(result.raster.times, raster.times)
        np.testing.assert_array_equal(result.raster.neuron_ids, raster.neuron_ids)


class TestIsaBackends:
    def test_functional_run(self):
        result = run_on_backend(
            "functional", RunRequest(num_neurons=12, num_steps=1, seed=3)
        )
        assert result.raster is None
        assert result.metrics["instret"] > 0
        assert result.metrics["exit_code"] == 0

    def test_cycle_run(self):
        result = run_on_backend("cycle", RunRequest(num_neurons=12, num_steps=1, seed=3))
        assert result.metrics["cycles"] > result.metrics["instructions"] > 0
        assert 0.0 < result.metrics["ipc"] <= 1.0

    def test_isa_backends_do_not_batch(self):
        for name in ("functional", "cycle"):
            backend = get_backend(name)
            assert not backend.supports_batching
            assert backend.build_network(RunRequest()) is None


class TestWorkloadSweeps:
    def test_seed_sweep_batched_equals_sequential(self):
        seeds = [5, 6, 7]
        batched = eighty_twenty_seed_sweep(seeds, num_steps=60, num_neurons=50)
        sequential = eighty_twenty_seed_sweep(
            seeds, num_steps=60, num_neurons=50, batched=False
        )
        assert batched.seeds == sequential.seeds == seeds
        for fast, slow in zip(batched.rasters, sequential.rasters):
            np.testing.assert_array_equal(fast.times, slow.times)
            np.testing.assert_array_equal(fast.neuron_ids, slow.neuron_ids)
        assert batched.mean_rate_hz == sequential.mean_rate_hz

    def test_seed_sweep_summaries(self):
        sweep = eighty_twenty_seed_sweep([5, 6], num_steps=40, num_neurons=50)
        assert [s["seed"] for s in sweep.summaries] == [5, 6]
        assert all(s["backend"] == "fixed" for s in sweep.summaries)

    def test_batched_thalamic_provider_rejects_mixed_scales(self):
        from repro.runtime import batched_thalamic_provider
        from repro.snn import EightyTwentyConfig

        configs = [
            EightyTwentyConfig(num_excitatory=80, num_inhibitory=20, seed=1),
            EightyTwentyConfig(
                num_excitatory=80, num_inhibitory=20, thalamic_inhibitory=3.0, seed=2
            ),
        ]
        with pytest.raises(ValueError, match="thalamic scales"):
            batched_thalamic_provider(configs)

    def test_pooled_sudoku_sweep_shape(self):
        result = pooled_sudoku_sweep(2, target_clues=40, max_steps=150)
        assert result["num_puzzles"] == 2
        assert len(result["results"]) == 2
        assert 0.0 <= result["solve_rate"] <= 1.0
        assert all(r["num_clues"] >= 40 for r in result["results"])
