"""Batched-vs-sequential equivalence of the vectorised batch engine.

The contract of :class:`repro.runtime.batch.BatchedNetwork` in its
default (``exact``) mode: running ``B`` stacked networks produces
**bit-identical** spike rasters to ``B`` sequential ``SNNNetwork.run``
calls — exactly equal rasters for the fixed-point backend (the hardware
datapath is integer arithmetic) and equal-within-float64 trajectories
(which in practice are also bit-equal, since the fused update performs
the identical elementwise operations) for the double-precision reference.
"""

import numpy as np
import pytest

from repro.fixedpoint import Q15_16
from repro.runtime import BatchedNetwork, BatchIncompatibleError
from repro.runtime.batch import _FixedBatchKernel, _quantize_q15_16
from repro.sim.npu import izhikevich_update_raw
from repro.snn import EightyTwentyConfig, build_eighty_twenty
from repro.sudoku import SNNSudokuSolver, generate_puzzle_set

NUM_STEPS = 120
SEEDS_B8 = [21, 22, 23, 24, 25, 26, 27, 28]


def _make_networks(seeds, *, backend="fixed", current_mode="recompute"):
    """Fresh, independently seeded scaled-down 80-20 networks."""
    networks = []
    for seed in seeds:
        definition = build_eighty_twenty(
            EightyTwentyConfig(num_excitatory=48, num_inhibitory=12, seed=seed)
        )
        if backend == "float64":
            networks.append(definition.float_network())
        else:
            networks.append(definition.fixed_network(current_mode=current_mode))
    return networks


def _assert_rasters_equal(sequential, batched):
    assert len(sequential) == len(batched)
    for seq_raster, batch_raster in zip(sequential, batched):
        assert seq_raster.num_steps == batch_raster.num_steps
        assert seq_raster.num_neurons == batch_raster.num_neurons
        np.testing.assert_array_equal(seq_raster.times, batch_raster.times)
        np.testing.assert_array_equal(seq_raster.neuron_ids, batch_raster.neuron_ids)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_fixed_point_bit_exact(self, batch_size):
        seeds = SEEDS_B8[:batch_size]
        sequential = [net.run(NUM_STEPS) for net in _make_networks(seeds)]
        batched = BatchedNetwork.from_networks(_make_networks(seeds)).run(NUM_STEPS)
        _assert_rasters_equal(sequential, batched)

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_float64_equivalent(self, batch_size):
        seeds = SEEDS_B8[:batch_size]
        seq_nets = _make_networks(seeds, backend="float64")
        sequential = [net.run(NUM_STEPS) for net in seq_nets]
        bat_nets = _make_networks(seeds, backend="float64")
        batch = BatchedNetwork.from_networks(bat_nets)
        batched = batch.run(NUM_STEPS)
        _assert_rasters_equal(sequential, batched)
        # Final membrane potentials agree to float64 tolerance as well.
        final_v = np.stack([net.population.v for net in seq_nets])
        np.testing.assert_allclose(batch.membrane_potentials, final_v, rtol=1e-12, atol=1e-12)

    def test_fixed_point_decay_mode_bit_exact(self):
        seeds = SEEDS_B8[:4]
        sequential = [net.run(NUM_STEPS) for net in _make_networks(seeds, current_mode="decay")]
        batched = BatchedNetwork.from_networks(
            _make_networks(seeds, current_mode="decay")
        ).run(NUM_STEPS)
        _assert_rasters_equal(sequential, batched)

    def test_fused_mode_matches_exact_without_synapses(self):
        # With no recurrent synapses the fused mode performs the identical
        # arithmetic, so exact and fused runs must agree bit-for-bit.
        def make():
            nets = _make_networks(SEEDS_B8[:4])
            for net in nets:
                net.synapses = None
            return nets

        def provider(step):
            rng = np.random.default_rng(step)
            return 8.0 * rng.standard_normal((4, 60))

        exact = BatchedNetwork.from_networks(
            make(), synapse_mode="exact", batched_external=provider
        ).run(NUM_STEPS)
        fused = BatchedNetwork.from_networks(
            make(), synapse_mode="fused", batched_external=provider
        ).run(NUM_STEPS)
        _assert_rasters_equal(exact, fused)

    def test_fused_mode_statistically_consistent(self):
        # With dense synapses the fused gather changes float summation
        # order; rates must still match the sequential run closely.
        sequential = [net.run(NUM_STEPS) for net in _make_networks(SEEDS_B8)]
        fused = BatchedNetwork.from_networks(
            _make_networks(SEEDS_B8), synapse_mode="fused"
        ).run(NUM_STEPS)
        seq_rate = np.mean([r.mean_rate_hz() for r in sequential])
        fused_rate = np.mean([r.mean_rate_hz() for r in fused])
        assert abs(fused_rate - seq_rate) <= max(2.0, 0.3 * seq_rate)

    def test_warm_networks_resume_bit_exact(self):
        # Stacking networks that have already been stepped must carry the
        # synaptic-current state and last-fired masks over, so the batch
        # continues exactly where each sequential engine left off.
        seeds = SEEDS_B8[:3]
        warm_steps, tail_steps = 40, 40
        sequential_nets = _make_networks(seeds, current_mode="decay")
        for net in sequential_nets:
            net.run(warm_steps)
        sequential_tail = [
            np.stack([net.step(warm_steps + t) for t in range(tail_steps)])
            for net in sequential_nets
        ]
        batched_nets = _make_networks(seeds, current_mode="decay")
        for net in batched_nets:
            net.run(warm_steps)
        batch = BatchedNetwork.from_networks(batched_nets)
        batched_tail = batch.run(tail_steps, start_step=warm_steps)
        for b, expected in enumerate(sequential_tail):
            np.testing.assert_array_equal(
                batched_tail[b].to_bool_matrix(), expected
            )

    def test_incompatible_networks_rejected(self):
        mixed = _make_networks([1]) + _make_networks([2], backend="float64")
        with pytest.raises(BatchIncompatibleError):
            BatchedNetwork.from_networks(mixed)
        with pytest.raises(BatchIncompatibleError):
            BatchedNetwork.from_networks([])
        sizes = _make_networks([1])
        other = [
            build_eighty_twenty(
                EightyTwentyConfig(num_excitatory=24, num_inhibitory=6, seed=3)
            ).fixed_network()
        ]
        with pytest.raises(BatchIncompatibleError):
            BatchedNetwork.from_networks(sizes + other)


class TestFusedKernelPrimitives:
    def test_kernel_bit_exact_with_npu_datapath(self):
        rng = np.random.default_rng(7)
        shape = (6, 40)
        v = rng.integers(-22000, 8200, size=shape)
        u = rng.integers(-8000, 8000, size=shape)
        isyn = rng.integers(-(1 << 22), 1 << 22, size=shape)
        a = rng.integers(1, 300, size=shape)
        b = rng.integers(1, 600, size=shape)
        c = rng.integers(-18000, -10000, size=shape)
        d = rng.integers(0, 4000, size=shape)
        for h_shift, pin in ((1, False), (3, False), (1, True)):
            expected_v, expected_u, expected_spike = izhikevich_update_raw(
                v, u, isyn, a_raw=a, b_raw=b, c_raw=c, d_raw=d, h_shift=h_shift, pin_voltage=pin
            )
            kernel = _FixedBatchKernel(a, b, c, d, h_shift=h_shift, pin_voltage=pin)
            got_v = v.astype(np.int64).copy()
            got_u = u.astype(np.int64).copy()
            spike = kernel.substep(got_v, got_u, isyn.astype(np.int64))
            np.testing.assert_array_equal(got_v, expected_v)
            np.testing.assert_array_equal(got_u, expected_u)
            np.testing.assert_array_equal(spike, expected_spike.astype(bool))

    def test_fused_quantizer_matches_qformat(self):
        rng = np.random.default_rng(11)
        values = np.concatenate(
            [
                rng.uniform(-40000.0, 40000.0, size=500),
                np.array([0.0, -0.5, 0.5, 1.5, -1.5, 32767.99998, -32768.0]),
                rng.uniform(-1e-4, 1e-4, size=100),
            ]
        )
        out = np.empty(values.shape, dtype=np.int64)
        _quantize_q15_16(values, out)
        expected = np.asarray(Q15_16.from_float(values), dtype=np.int64)
        np.testing.assert_array_equal(out, expected)


class TestSudokuSolveBatch:
    def test_solve_batch_bit_identical_to_sequential(self):
        puzzles = [g.puzzle for g in generate_puzzle_set(2, base_seed=1000, target_clues=40)]
        solver = SNNSudokuSolver()
        sequential = [solver.solve(p, max_steps=600, check_interval=5) for p in puzzles]
        batched = solver.solve_batch(puzzles, max_steps=600, check_interval=5)
        assert len(batched) == len(sequential)
        for seq_result, batch_result in zip(sequential, batched):
            assert batch_result.solved == seq_result.solved
            assert batch_result.steps == seq_result.steps
            assert batch_result.total_spikes == seq_result.total_spikes
            assert batch_result.neuron_updates == seq_result.neuron_updates
            np.testing.assert_array_equal(batch_result.board.cells, seq_result.board.cells)

    def test_solve_many_delegates_to_batch(self):
        puzzles = [g.puzzle for g in generate_puzzle_set(2, base_seed=1000, target_clues=40)]
        solver = SNNSudokuSolver()
        many = solver.solve_many(puzzles, max_steps=200)
        batch = solver.solve_batch(puzzles, max_steps=200)
        for a, b in zip(many, batch):
            assert a.steps == b.steps and a.total_spikes == b.total_spikes
