"""BatchedNetwork.extend and the portfolio drive: stack-in correctness.

``extend`` is retain's inverse: appending replicas to a live batch must
leave existing rows' trajectories untouched and give each new row the
exact trajectory it would have standalone.  The portfolio drive supplies
the per-row step offsets that make a mid-run stack-in bit-identical to a
fresh standalone solve.
"""

import numpy as np
import pytest

from repro.csp import SpikingCSPSolver, make_instance
from repro.runtime import BatchedNetwork, BatchIncompatibleError
from repro.runtime.drives import (
    PortfolioAnnealedDrive,
    compile_batched_external,
)


def _networks(seeds, *, instance_seed=3, num_vertices=8):
    graph, clamps = make_instance(
        "coloring", seed=instance_seed, num_vertices=num_vertices, num_colors=3
    )
    return [SpikingCSPSolver(graph, seed=int(s)).build_network(clamps) for s in seeds]


def _spikes(batch, num_steps, start=1):
    out = []
    for t in range(num_steps):
        out.append(batch.step(start + t).copy())
    return np.stack(out)


class TestPortfolioDriveEquivalence:
    def test_matches_compiled_drive_with_zero_offsets(self):
        nets_a = _networks([11, 12, 13])
        nets_b = _networks([11, 12, 13])
        compiled = compile_batched_external(nets_a)
        portfolio = PortfolioAnnealedDrive([n.external_input.drive_spec for n in nets_b])
        for step in range(1, 70):
            np.testing.assert_array_equal(compiled(step), portfolio(step).copy())

    def test_offset_rows_replay_the_standalone_phase(self):
        # A spec with offset g called at global step g + t must equal the
        # zero-offset spec of an identically seeded network at local t.
        [fresh] = _networks([21])
        [shifted] = _networks([21])
        shifted.external_input.drive_spec.step_offset = 37
        reference = PortfolioAnnealedDrive([fresh.external_input.drive_spec])
        offset = PortfolioAnnealedDrive([shifted.external_input.drive_spec])
        for local in range(1, 50):
            np.testing.assert_array_equal(
                reference(local), offset(37 + local).copy()
            )

    def test_extend_joins_streams_mid_chunk(self):
        nets = _networks([1, 2])
        drive = PortfolioAnnealedDrive([n.external_input.drive_spec for n in nets])
        for step in range(1, 12):  # mid-chunk (chunk = 32)
            drive(step)
        [extra] = _networks([3])
        extra.external_input.drive_spec.step_offset = 11
        drive.extend([extra])
        assert drive.batch_shape[0] == 3
        [solo] = _networks([3])
        reference = PortfolioAnnealedDrive([solo.external_input.drive_spec])
        for local in range(1, 60):
            got = drive(11 + local)
            np.testing.assert_array_equal(reference(local)[0], got[2])

    def test_retain_then_extend(self):
        nets = _networks([1, 2, 3])
        drive = PortfolioAnnealedDrive([n.external_input.drive_spec for n in nets])
        drive(1)
        drive.retain([0, 2])
        [extra] = _networks([4])
        drive.extend([extra])
        assert drive.batch_shape[0] == 3

    def test_extend_rejects_foreign_specs(self):
        nets = _networks([1])
        drive = PortfolioAnnealedDrive([n.external_input.drive_spec for n in nets])
        [other] = _networks([2], instance_seed=9, num_vertices=12)
        with pytest.raises(ValueError):
            drive.extend([other])


class TestBatchedNetworkExtend:
    def test_extend_at_start_matches_joint_construction(self):
        joint = BatchedNetwork.from_networks(_networks([5, 6, 7]))
        grown = BatchedNetwork.from_networks(_networks([5, 6]))
        grown.extend(_networks([7]))
        assert grown.batch_size == 3
        np.testing.assert_array_equal(_spikes(joint, 40), _spikes(grown, 40))

    def test_existing_rows_unchanged_by_mid_run_extend(self):
        reference = BatchedNetwork.from_networks(_networks([5, 6]))
        ref_spikes = _spikes(reference, 60)
        grown = BatchedNetwork.from_networks(_networks([5, 6]))
        first = _spikes(grown, 25)
        grown.extend(_networks([8]))
        rest = _spikes(grown, 35, start=26)
        np.testing.assert_array_equal(ref_spikes[:25], first)
        np.testing.assert_array_equal(ref_spikes[25:], rest[:, :2])

    def test_new_row_matches_standalone_run(self):
        # The stacked-in replica's raster (per-replica external providers,
        # which are step-indexed closures) equals the standalone network's.
        grown = BatchedNetwork.from_networks(_networks([5, 6]))
        _spikes(grown, 25)
        [incoming] = _networks([9])
        [standalone] = _networks([9])
        grown.extend([incoming])
        got = _spikes(grown, 40, start=26)[:, 2]
        expected = np.stack([standalone.step(26 + t).copy() for t in range(40)])
        np.testing.assert_array_equal(expected, got)

    def test_integer_kernel_survives_extend(self):
        batch = BatchedNetwork.from_networks(_networks([5, 6]))
        assert batch.integer_propagation
        batch.extend(_networks([7]))
        assert batch.integer_propagation

    def test_extend_rejects_size_mismatch(self):
        batch = BatchedNetwork.from_networks(_networks([5, 6]))
        with pytest.raises(BatchIncompatibleError):
            batch.extend(_networks([1], instance_seed=9, num_vertices=12))

    def test_extend_rejects_mixed_population_kinds(self):
        graph, clamps = make_instance("coloring", seed=3, num_vertices=8, num_colors=3)
        batch = BatchedNetwork.from_networks(_networks([5, 6]))
        floaty = SpikingCSPSolver(graph, backend="float64", seed=1).build_network(clamps)
        with pytest.raises(BatchIncompatibleError):
            batch.extend([floaty])

    def test_extend_without_provider_support_refuses(self):
        nets = _networks([5, 6])
        batch = BatchedNetwork.from_networks(
            nets, batched_external=compile_batched_external(nets)
        )
        with pytest.raises(BatchIncompatibleError):
            batch.extend(_networks([7]))
        # The refusal left the batch fully usable.
        batch.step(1)

    def test_extend_with_portfolio_drive_validates_shape(self):
        nets = _networks([5, 6])
        batch = BatchedNetwork.from_networks(
            nets,
            batched_external=PortfolioAnnealedDrive(
                [n.external_input.drive_spec for n in nets]
            ),
        )
        batch.extend(_networks([7]))
        assert batch._batched_external.batch_shape == (3, batch.size)
        batch.step(1)

    def test_empty_extend_is_noop(self):
        batch = BatchedNetwork.from_networks(_networks([5, 6]))
        batch.extend([])
        assert batch.batch_size == 2

    def test_float64_extend(self):
        graph, clamps = make_instance("coloring", seed=3, num_vertices=8, num_colors=3)

        def build(seeds):
            return [
                SpikingCSPSolver(graph, backend="float64", seed=int(s)).build_network(clamps)
                for s in seeds
            ]

        joint = BatchedNetwork.from_networks(build([1, 2, 3]))
        grown = BatchedNetwork.from_networks(build([1, 2]))
        grown.extend(build([3]))
        np.testing.assert_array_equal(_spikes(joint, 30), _spikes(grown, 30))
