"""Cross-policy differential suite for the shared slot engine.

The :class:`~repro.runtime.slots.SlotEngine` contract: *no interleaving
of retire/admit decisions can perturb a surviving row*.  Whatever policy
drives the checkpoints — the one-shot solver batches, the restart
portfolio, the serve scheduler, or the adversarial chaos policy below —
every row that runs to solution or budget must be bit-identical to a
standalone ``SpikingCSPSolver(graph, cfg, seed).solve(clamps,
max_steps=budget, check_interval=...)`` run: same solved flag, step
count, decoded board and spike totals.

The chaos policy randomises everything a policy controls (retirement of
healthy rows mid-flight, admission timing, per-row budgets) from a seeded
RNG, so the suite sweeps arbitrary recomposition interleavings while
staying reproducible.
"""

import random
from collections import deque
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.csp import SpikingCSPSolver, make_instance
from repro.csp.config import CSPConfig
from repro.csp.solver import CSP_SLOT_DECODER, decode_assignment
from repro.runtime.slots import (
    OneShotPolicy,
    SlotDecision,
    SlotEngine,
    SlotRow,
)

CHECK_INTERVAL = 10


@dataclass(frozen=True)
class _Job:
    """One admission's identity: an instance run under a seed and budget."""

    name: str
    seed: int
    budget: int

    def make(self):
        graph, clamps = make_instance(
            "coloring", seed=self.seed, num_vertices=8, num_colors=3
        )
        return graph, graph.resolve_clamps(clamps)


@dataclass
class _Finished:
    local_steps: int
    spikes: int
    solved: bool
    values: np.ndarray
    decided: np.ndarray


def _standalone(job: _Job, config: CSPConfig):
    graph, clamps = job.make()
    solver = SpikingCSPSolver(graph, config, backend="fixed", seed=job.seed)
    return solver.solve(clamps, max_steps=job.budget, check_interval=CHECK_INTERVAL)


class _ChaosPolicy:
    """Adversarial scheduling: random victimisation and refill timing.

    Rows that reach a verdict (solved, or local budget exhausted) are
    recorded in :attr:`finished`; healthy rows are randomly dropped
    mid-flight (the victims — nothing is recorded, the point is the harm
    they *don't* do to their neighbours); freed capacity is refilled
    from the job queue at RNG-chosen checkpoints.
    """

    def __init__(self, jobs: List[_Job], *, config: CSPConfig, slots: int, rng: random.Random):
        self._queue = deque(jobs)
        self._config = config
        self._slots = slots
        self._rng = rng
        self.finished = {}
        self.victims: List[_Job] = []

    def _admit_one(self):
        job = self._queue.popleft()
        graph, clamps = job.make()
        solver = SpikingCSPSolver(graph, self._config, backend="fixed", seed=job.seed)
        row = SlotRow(graph=graph, clamps=clamps, budget=job.budget, payload=job)
        return row, solver.build_network(clamps)

    def initial_admissions(self, engine):
        return [self._admit_one() for _ in range(min(self._slots, len(self._queue)))]

    def on_checkpoint(self, checkpoint):
        engine = checkpoint.engine
        keep = []
        for i, row in enumerate(engine.rows):
            if checkpoint.at_check[i]:
                decode = engine.decode_row(i)
                if decode.solved or checkpoint.at_budget[i]:
                    self.finished[row.payload] = _Finished(
                        local_steps=int(checkpoint.local[i]),
                        spikes=int(engine.row_spikes[i]),
                        solved=decode.solved,
                        values=decode.values,
                        decided=decode.decided,
                    )
                    continue
            if self._rng.random() < 0.15:
                self.victims.append(row.payload)
                continue
            keep.append(i)
        free = self._slots - len(keep)
        admissions = []
        while free > 0 and self._queue and self._rng.random() < 0.7:
            admissions.append(self._admit_one())
            free -= 1
        return SlotDecision(keep=keep, admissions=admissions)


class TestChaosDifferential:
    @pytest.mark.parametrize("chaos_seed", [11, 23, 47])
    def test_survivors_bit_identical_to_standalone(self, chaos_seed):
        rng = random.Random(chaos_seed)
        config = CSPConfig()
        jobs = [
            _Job(name=f"job{i}", seed=100 + i, budget=rng.choice([60, 90, 140, 200]))
            for i in range(10)
        ]
        policy = _ChaosPolicy(jobs, config=config, slots=4, rng=rng)
        engine = SlotEngine(
            decoder=CSP_SLOT_DECODER,
            window=max(1, config.decode_window),
            check_interval=CHECK_INTERVAL,
            extendable=True,
        )
        engine.run(policy, max_steps=4000)

        # The run must have exercised the interesting interleavings:
        # mid-flight victims, late admissions, and natural completions.
        assert policy.finished, "no row ran to a verdict"
        assert policy.victims, "chaos never victimised a row"
        late = [job for job in policy.finished if policy.finished[job].local_steps > 0]
        assert late

        for job, outcome in policy.finished.items():
            reference = _standalone(job, config)
            assert outcome.solved == reference.solved, job
            assert outcome.local_steps == reference.steps, job
            assert outcome.spikes == reference.total_spikes, job
            np.testing.assert_array_equal(outcome.values, reference.values)
            np.testing.assert_array_equal(outcome.decided, reference.decided)

    def test_staggered_admissions_have_nonzero_offsets(self):
        rng = random.Random(3)
        config = CSPConfig()
        jobs = [
            _Job(name=f"job{i}", seed=500 + i, budget=rng.choice([60, 120]))
            for i in range(8)
        ]
        policy = _ChaosPolicy(jobs, config=config, slots=2, rng=rng)
        engine = SlotEngine(
            decoder=CSP_SLOT_DECODER,
            window=max(1, config.decode_window),
            check_interval=CHECK_INTERVAL,
            extendable=True,
        )
        offsets = []
        original = policy._admit_one

        def tracking_admit():
            row, network = original()
            offsets.append(row)
            return row, network

        policy._admit_one = tracking_admit
        engine.run(policy, max_steps=4000)
        # Rows admitted at a later checkpoint carry that global step as
        # their offset (stamped by the engine, not the policy).
        assert any(row.offset > 0 for row in offsets)


class TestOneShotPolicy:
    def test_matches_sequential_solves(self):
        config = CSPConfig()
        jobs = [_Job(name=f"job{i}", seed=40 + i, budget=900) for i in range(5)]
        admissions = []
        for job in jobs:
            graph, clamps = job.make()
            solver = SpikingCSPSolver(graph, config, backend="fixed", seed=job.seed)
            row = SlotRow(graph=graph, clamps=clamps, budget=job.budget, payload=job)
            admissions.append((row, solver.build_network(clamps)))
        policy = OneShotPolicy(admissions)
        engine = SlotEngine(
            decoder=CSP_SLOT_DECODER,
            window=max(1, config.decode_window),
            check_interval=CHECK_INTERVAL,
            extendable=False,
        )
        engine.run(policy, max_steps=900)
        assert len(policy.outcomes) == len(jobs)
        by_job = {outcome.row.payload: outcome for outcome in policy.outcomes}
        for job in jobs:
            outcome = by_job[job]
            reference = _standalone(job, config)
            assert outcome.decode.solved == reference.solved
            assert outcome.local_steps == reference.steps
            assert outcome.spikes == reference.total_spikes
            np.testing.assert_array_equal(outcome.decode.values, reference.values)


class TestZeroStepGuards:
    def test_zero_budget_never_builds_a_batch(self, monkeypatch):
        """max_steps <= 0 must not admit rows or allocate a batch."""

        def boom(*args, **kwargs):  # pragma: no cover - guard breach
            raise AssertionError("BatchedNetwork built for a zero-step run")

        import repro.runtime.slots as slots_module

        monkeypatch.setattr(slots_module.BatchedNetwork, "from_networks", boom)

        calls = []

        class CountingPolicy:
            def initial_admissions(self, engine):  # pragma: no cover - guard breach
                calls.append("admit")
                return []

            def on_checkpoint(self, checkpoint):  # pragma: no cover - guard breach
                calls.append("checkpoint")
                return SlotDecision(keep=[])

        engine = SlotEngine(
            decoder=CSP_SLOT_DECODER, window=4, check_interval=CHECK_INTERVAL
        )
        engine.run(CountingPolicy(), max_steps=0)
        engine.run(CountingPolicy(), max_steps=-3)
        assert calls == []
        assert engine.num_rows == 0
        assert engine.global_step == 0

    def test_empty_window_decodes_clamps_only(self):
        graph, clamps = make_instance("coloring", seed=9, num_vertices=6, num_colors=3)
        resolved = graph.resolve_clamps(clamps)
        window_counts, last_spike = SlotEngine.empty_window(graph.num_neurons)
        values, decided = decode_assignment(graph, window_counts, last_spike, resolved)
        clamped = {variable for variable, _, _ in resolved}
        for variable in range(graph.num_variables):
            assert decided[variable] == (variable in clamped)


class TestRecomposeEdges:
    def _engine_with_rows(self, count=3):
        config = CSPConfig()
        engine = SlotEngine(
            decoder=CSP_SLOT_DECODER,
            window=max(1, config.decode_window),
            check_interval=CHECK_INTERVAL,
            extendable=True,
        )
        admissions = []
        for i in range(count):
            job = _Job(name=f"row{i}", seed=70 + i, budget=300)
            graph, clamps = job.make()
            solver = SpikingCSPSolver(graph, config, backend="fixed", seed=job.seed)
            row = SlotRow(graph=graph, clamps=clamps, budget=job.budget, payload=job)
            admissions.append((row, solver.build_network(clamps)))
        engine.admit(admissions)
        return engine

    def test_keep_all_without_admissions_is_a_no_op(self):
        engine = self._engine_with_rows()
        batch_before = engine._batch
        rows_before = list(engine.rows)
        engine.recompose([0, 1, 2], [])
        assert engine._batch is batch_before
        assert engine.rows == rows_before

    def test_empty_recompose_tears_down(self):
        engine = self._engine_with_rows()
        engine.recompose([], [])
        assert engine.num_rows == 0
        assert engine._batch is None

    def test_fast_forward_refuses_live_rows(self):
        engine = self._engine_with_rows()
        with pytest.raises(RuntimeError):
            engine.fast_forward(50)
        engine.recompose([], [])
        engine.fast_forward(50)
        assert engine.global_step == 50
        engine.fast_forward(20)  # never rewinds
        assert engine.global_step == 50
