"""Checkpoint format, store fallback, and crash-resume bit-identity.

The contract pinned here (see ``docs/RUNTIME.md``): a snapshot is either
complete and verifiable or it fails *loudly* with a typed error, and a
solve resumed from a snapshot continues bit-identically to one that was
never interrupted — including across a real ``os._exit`` crash injected
by a :class:`~repro.runtime.checkpoint.FaultPlan`.
"""

import os
import struct
import subprocess
import sys

import numpy as np
import pytest

from repro.csp.scenarios import make_instance
from repro.csp.solver import solve_instances
from repro.runtime.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    CheckpointVersionError,
    FaultPlan,
    read_checkpoint,
    write_checkpoint,
)

# --------------------------------------------------------------------- #
# File format: versioned, checksummed, typed failures
# --------------------------------------------------------------------- #
PAYLOAD = {"arrays": [np.arange(7, dtype=np.int64), np.ones((2, 3))], "step": 42}


def test_roundtrip_preserves_payload(tmp_path):
    path = write_checkpoint(tmp_path / "snap.ckpt", PAYLOAD, kind="unit")
    loaded = read_checkpoint(path, kind="unit")
    assert loaded["step"] == 42
    np.testing.assert_array_equal(loaded["arrays"][0], PAYLOAD["arrays"][0])
    np.testing.assert_array_equal(loaded["arrays"][1], PAYLOAD["arrays"][1])


def test_kind_mismatch_is_a_typed_error(tmp_path):
    path = write_checkpoint(tmp_path / "snap.ckpt", PAYLOAD, kind="serve")
    with pytest.raises(CheckpointError, match="kind"):
        read_checkpoint(path, kind="csp-solve")
    # Without an expectation the kind is not enforced.
    assert read_checkpoint(path)["step"] == 42


def test_bad_magic_is_corrupt(tmp_path):
    path = tmp_path / "junk.ckpt"
    path.write_bytes(b"not a checkpoint at all")
    with pytest.raises(CheckpointCorruptError, match="magic"):
        read_checkpoint(path)


def test_truncated_file_is_corrupt(tmp_path):
    path = write_checkpoint(tmp_path / "snap.ckpt", PAYLOAD)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - len(blob) // 3])
    with pytest.raises(CheckpointCorruptError, match="torn|truncated"):
        read_checkpoint(path)


def test_flipped_payload_byte_is_corrupt(tmp_path):
    path = write_checkpoint(tmp_path / "snap.ckpt", PAYLOAD)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointCorruptError, match="checksum"):
        read_checkpoint(path)


def test_alien_format_version_is_a_version_error(tmp_path):
    path = write_checkpoint(tmp_path / "snap.ckpt", PAYLOAD)
    blob = bytearray(path.read_bytes())
    struct.pack_into("<I", blob, len(CHECKPOINT_MAGIC), 999)
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointVersionError, match="999"):
        read_checkpoint(path)


def test_missing_file_passes_through(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_checkpoint(tmp_path / "nope.ckpt")


# --------------------------------------------------------------------- #
# Fault injection produces exactly the failures the reader defends against
# --------------------------------------------------------------------- #
def test_injected_torn_write_reads_as_corrupt(tmp_path):
    fault = FaultPlan(torn_write_at=2)
    good = write_checkpoint(tmp_path / "a.ckpt", PAYLOAD, fault=fault)
    torn = write_checkpoint(tmp_path / "b.ckpt", PAYLOAD, fault=fault)
    assert read_checkpoint(good)["step"] == 42  # write 1 untouched
    with pytest.raises(CheckpointCorruptError, match="torn"):
        read_checkpoint(torn)


def test_injected_corruption_reads_as_checksum_mismatch(tmp_path):
    fault = FaultPlan(corrupt_at=1, seed=3)
    path = write_checkpoint(tmp_path / "a.ckpt", PAYLOAD, fault=fault)
    with pytest.raises(CheckpointCorruptError, match="checksum"):
        read_checkpoint(path)


def test_fault_plan_crash_threshold():
    fault = FaultPlan(crash_at_step=100)
    assert not fault.should_crash(99)
    assert fault.should_crash(100) and fault.should_crash(101)
    assert not FaultPlan().should_crash(10**9)


# --------------------------------------------------------------------- #
# Store: rotation and last-good fallback
# --------------------------------------------------------------------- #
def test_store_rotates_to_keep(tmp_path):
    store = CheckpointStore(tmp_path, keep=2)
    for step in (10, 20, 30, 40):
        store.save(step, {"step": step})
    assert store.steps() == [30, 40]
    step, payload = store.load_latest()
    assert step == 40 and payload["step"] == 40 and store.failures == []


def test_store_falls_back_past_corrupt_newest(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    for step in (10, 20, 30):
        store.save(step, {"step": step})
    newest = tmp_path / "ckpt-000000000030.ckpt"
    blob = bytearray(newest.read_bytes())
    blob[-1] ^= 0xFF
    newest.write_bytes(bytes(blob))

    step, payload = store.load_latest()
    assert step == 20 and payload["step"] == 20
    assert len(store.failures) == 1
    failed_path, error = store.failures[0]
    assert failed_path == newest and isinstance(error, CheckpointCorruptError)


def test_store_with_no_good_snapshot_returns_none(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.load_latest() is None  # empty directory
    store.save(10, {"step": 10})
    path = tmp_path / "ckpt-000000000010.ckpt"
    path.write_bytes(b"garbage")
    assert store.load_latest() is None
    assert len(store.failures) == 1


def test_store_rejects_nonpositive_keep(tmp_path):
    with pytest.raises(ValueError):
        CheckpointStore(tmp_path, keep=0)


# --------------------------------------------------------------------- #
# CSP solve: checkpointed runs are bit-identical, resumable, fingerprinted
# --------------------------------------------------------------------- #
def _instances():
    return [
        make_instance("coloring", seed=i, num_vertices=9, num_colors=3) for i in range(4)
    ]


SOLVE_KW = dict(seed=5, max_steps=600, check_interval=10)


def _assert_results_identical(actual, expected):
    assert len(actual) == len(expected)
    for got, ref in zip(actual, expected):
        assert got.solved == ref.solved
        assert got.steps == ref.steps
        assert got.total_spikes == ref.total_spikes
        assert got.neuron_updates == ref.neuron_updates
        assert got.attempt_steps == ref.attempt_steps
        np.testing.assert_array_equal(got.values, ref.values)
        np.testing.assert_array_equal(got.decided, ref.decided)


def test_checkpointing_does_not_change_results(tmp_path):
    baseline = solve_instances(_instances(), **SOLVE_KW)
    checkpointed = solve_instances(
        _instances(), **SOLVE_KW, checkpoint_dir=tmp_path, checkpoint_every=50
    )
    _assert_results_identical(checkpointed, baseline)
    # Re-calling resumes from the completion snapshot: same results again.
    resumed = solve_instances(
        _instances(), **SOLVE_KW, checkpoint_dir=tmp_path, checkpoint_every=50
    )
    _assert_results_identical(resumed, baseline)


def test_crashed_solve_resumes_bit_identically(tmp_path):
    """kill the process mid-solve (injected ``os._exit``), resume, compare."""
    ckpt_dir = tmp_path / "ckpts"
    script = tmp_path / "crashing_solve.py"
    script.write_text(
        "import sys\n"
        f"sys.path.insert(0, {os.path.join(os.path.dirname(__file__), '..', '..', 'src')!r})\n"
        "from repro.csp.scenarios import make_instance\n"
        "from repro.csp.solver import solve_instances\n"
        "from repro.runtime.checkpoint import FaultPlan\n"
        "instances = [make_instance('coloring', seed=i, num_vertices=9, num_colors=3)\n"
        "             for i in range(4)]\n"
        "solve_instances(instances, seed=5, max_steps=600, check_interval=10,\n"
        f"                checkpoint_dir={str(ckpt_dir)!r}, checkpoint_every=50,\n"
        "                fault=FaultPlan(crash_at_step=150))\n"
    )
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == FaultPlan.CRASH_EXIT_CODE, proc.stderr
    assert len(list(ckpt_dir.glob("*.ckpt"))) >= 1  # died with state on disk

    resumed = solve_instances(
        _instances(), **SOLVE_KW, checkpoint_dir=ckpt_dir, checkpoint_every=50
    )
    baseline = solve_instances(_instances(), **SOLVE_KW)
    _assert_results_identical(resumed, baseline)


def test_checkpoint_dir_is_bound_to_the_solve(tmp_path):
    solve_instances(
        _instances(), **SOLVE_KW, checkpoint_dir=tmp_path, checkpoint_every=50
    )
    with pytest.raises(CheckpointError, match="different solve"):
        solve_instances(
            _instances(),
            seed=6,  # different seeds -> different solve identity
            max_steps=600,
            check_interval=10,
            checkpoint_dir=tmp_path,
        )


def test_torn_final_snapshot_degrades_to_previous_good_one(tmp_path):
    """A crash *during* the newest snapshot write falls back, not over."""
    # First pass with an inert plan just counts the snapshot writes.
    counter = FaultPlan()
    solve_instances(
        _instances(),
        **SOLVE_KW,
        checkpoint_dir=tmp_path / "count",
        checkpoint_every=50,
        fault=counter,
    )
    assert counter.checkpoint_writes >= 2  # need a good one to fall back to
    # Second pass tears the *last* write — the completion snapshot.
    fault = FaultPlan(torn_write_at=counter.checkpoint_writes)
    ckpt_dir = tmp_path / "torn"
    solve_instances(
        _instances(), **SOLVE_KW, checkpoint_dir=ckpt_dir, checkpoint_every=50, fault=fault
    )
    store = CheckpointStore(ckpt_dir, kind="csp-solve")
    loaded = store.load_latest()
    assert loaded is not None  # fell back past the torn file
    assert len(store.failures) == 1
    assert isinstance(store.failures[0][1], CheckpointCorruptError)
    # And a resume from the degraded state still matches the baseline.
    resumed = solve_instances(
        _instances(), **SOLVE_KW, checkpoint_dir=ckpt_dir, checkpoint_every=50
    )
    _assert_results_identical(resumed, solve_instances(_instances(), **SOLVE_KW))


def test_zero_budget_checkpointed_solve_is_the_empty_decode(tmp_path):
    plain = solve_instances(_instances(), seed=5, max_steps=0)
    checkpointed = solve_instances(
        _instances(), seed=5, max_steps=0, checkpoint_dir=tmp_path
    )
    _assert_results_identical(checkpointed, plain)
