"""Randomized bit-exactness suite for the integer CSR propagation kernel.

The integer path quantises synaptic weights to raw Q15.16 ``int64`` once
at stack time and propagates spikes for the whole batch with one gather +
segmented integer reduction, feeding the raw sum straight into the
fixed-point accumulator.  Its contract: whenever every weight is exactly
representable in Q15.16, a batched run is **bit-identical** to ``B``
sequential ``SNNNetwork.run`` calls — for shared and per-replica sparse
connectivity, dense connectivity, recompute and decay current modes, and
warm-started state.  Non-representable weights must silently fall back
to the per-replica float path with the same bit-exactness guarantee.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.fixedpoint import Q15_16
from repro.runtime import BatchedNetwork, BatchIncompatibleError
from repro.runtime.batch import _quantize_scaled_q15_16
from repro.snn.fixed_izhikevich import FixedPointPopulation
from repro.snn.izhikevich import IzhikevichPopulation
from repro.snn.network import SNNNetwork
from repro.snn.synapse import DenseSynapses, SparseSynapses, quantize_weights_q15_16

NUM_NEURONS = 48
NUM_STEPS = 80


def _representable_sparse(rng, *, num_neurons=NUM_NEURONS, density=0.15):
    """Random sparse connectivity whose weights are exact Q15.16 values."""
    nnz = max(1, int(num_neurons * num_neurons * density))
    rows = rng.integers(0, num_neurons, size=nnz)
    cols = rng.integers(0, num_neurons, size=nnz)
    vals = rng.integers(-20 * 65536, 20 * 65536, size=nnz) / 65536.0
    matrix = sparse.coo_matrix((vals, (rows, cols)), shape=(num_neurons, num_neurons))
    return SparseSynapses(matrix)


def _representable_dense(rng, *, num_neurons=NUM_NEURONS):
    raw = rng.integers(-4 * 65536, 4 * 65536, size=(num_neurons, num_neurons))
    return DenseSynapses(raw / 65536.0)


def _population(rng, *, backend="fixed", num_neurons=NUM_NEURONS):
    a = np.full(num_neurons, 0.1)
    b = np.full(num_neurons, 0.2)
    c = np.full(num_neurons, -65.0)
    d = np.full(num_neurons, 2.0)
    if backend == "fixed":
        return FixedPointPopulation.from_float_parameters(a, b, c, d, h_shift=1)
    return IzhikevichPopulation.from_parameters(a, b, c, d)


def _noise_input(seed, *, num_neurons=NUM_NEURONS, scale=6.0):
    rng = np.random.default_rng(seed)

    def provider(step):
        return 3.0 + scale * rng.standard_normal(num_neurons)

    return provider


def _make_networks(seeds, synapse_factory, *, backend="fixed", current_mode="decay"):
    networks = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        networks.append(
            SNNNetwork(
                population=_population(rng, backend=backend),
                synapses=synapse_factory(rng, seed),
                external_input=_noise_input(seed),
                current_mode=current_mode,
                tau_select=2,
            )
        )
    return networks


def _assert_bit_identical(sequential_nets, batched_nets, *, num_steps=NUM_STEPS, **batch_kwargs):
    sequential = [net.run(num_steps) for net in sequential_nets]
    batch = BatchedNetwork.from_networks(batched_nets, **batch_kwargs)
    batched = batch.run(num_steps)
    for seq, bat in zip(sequential, batched):
        np.testing.assert_array_equal(seq.to_bool_matrix(), bat.to_bool_matrix())
    return batch


class TestIntegerPathBitExact:
    @pytest.mark.parametrize("current_mode", ["recompute", "decay"])
    def test_per_replica_sparse(self, current_mode):
        seeds = [101, 102, 103, 104, 105]

        def factory(rng, seed):
            return _representable_sparse(rng)

        batch = _assert_bit_identical(
            _make_networks(seeds, factory, current_mode=current_mode),
            _make_networks(seeds, factory, current_mode=current_mode),
        )
        assert batch.integer_propagation

    @pytest.mark.parametrize("current_mode", ["recompute", "decay"])
    def test_shared_sparse(self, current_mode):
        seeds = [7, 8, 9, 10]
        shared = _representable_sparse(np.random.default_rng(99))

        def factory(rng, seed):
            return shared

        batch = _assert_bit_identical(
            _make_networks(seeds, factory, current_mode=current_mode),
            _make_networks(seeds, factory, current_mode=current_mode),
        )
        assert batch.integer_propagation
        assert batch._synapses._int_kind == "shared"

    def test_dense(self):
        seeds = [31, 32, 33]

        def factory(rng, seed):
            return _representable_dense(rng)

        batch = _assert_bit_identical(
            _make_networks(seeds, factory),
            _make_networks(seeds, factory),
        )
        assert batch.integer_propagation
        assert batch._synapses._int_kind == "dense"

    def test_float64_population_uses_integer_gather(self):
        seeds = [61, 62, 63]

        def factory(rng, seed):
            return _representable_sparse(rng)

        batch = _assert_bit_identical(
            _make_networks(seeds, factory, backend="float64", current_mode="recompute"),
            _make_networks(seeds, factory, backend="float64", current_mode="recompute"),
        )
        assert batch.integer_propagation

    def test_warm_start_resumes_bit_exact(self):
        seeds = [41, 42, 43]

        def factory(rng, seed):
            return _representable_sparse(rng)

        warm, tail = 30, 30
        sequential_nets = _make_networks(seeds, factory)
        for net in sequential_nets:
            net.run(warm)
        expected = [
            np.stack([net.step(warm + t) for t in range(tail)]) for net in sequential_nets
        ]
        batched_nets = _make_networks(seeds, factory)
        for net in batched_nets:
            net.run(warm)
        batch = BatchedNetwork.from_networks(batched_nets)
        assert batch.integer_propagation
        rasters = batch.run(tail, start_step=warm)
        for b, exp in enumerate(expected):
            np.testing.assert_array_equal(rasters[b].to_bool_matrix(), exp)

    def test_legacy_mode_matches_integer_mode(self):
        seeds = [71, 72, 73, 74]

        def factory(rng, seed):
            return _representable_sparse(rng)

        integer = BatchedNetwork.from_networks(_make_networks(seeds, factory))
        legacy = BatchedNetwork.from_networks(
            _make_networks(seeds, factory), integer_csr=False
        )
        assert integer.integer_propagation and not legacy.integer_propagation
        int_rasters = integer.run(NUM_STEPS)
        leg_rasters = legacy.run(NUM_STEPS)
        for a, b in zip(int_rasters, leg_rasters):
            np.testing.assert_array_equal(a.to_bool_matrix(), b.to_bool_matrix())


class TestFallbacks:
    def test_non_representable_weights_fall_back(self):
        seeds = [11, 12, 13]

        def factory(rng, seed):
            # Random float weights: essentially never exact Q15.16 values.
            matrix = sparse.random(
                NUM_NEURONS, NUM_NEURONS, density=0.1, random_state=int(seed), format="coo"
            )
            return SparseSynapses(matrix)

        batch = _assert_bit_identical(
            _make_networks(seeds, factory),
            _make_networks(seeds, factory),
        )
        assert not batch.integer_propagation

    def test_integer_csr_required_raises_on_float_weights(self):
        def factory(rng, seed):
            return SparseSynapses(
                sparse.random(NUM_NEURONS, NUM_NEURONS, density=0.1, random_state=3)
            )

        with pytest.raises(BatchIncompatibleError):
            BatchedNetwork.from_networks(
                _make_networks([1, 2], factory), integer_csr=True
            )

    def test_quantize_weights_lossless_flag(self):
        raw, lossless = quantize_weights_q15_16(np.array([-30.0, 0.0, 1.5, 2.0**-16]))
        assert lossless
        np.testing.assert_array_equal(raw, [-30 * 65536, 0, 98304, 1])
        _, lossy = quantize_weights_q15_16(np.array([0.1]))
        assert not lossy
        # Saturating values are not lossless either.
        _, saturated = quantize_weights_q15_16(np.array([40000.0]))
        assert not saturated


class TestScaledQuantizer:
    def test_matches_reference_quantisation(self):
        """round(base * 2^16 + S) must equal quantize(base + S / 2^16) bit-for-bit."""
        rng = np.random.default_rng(5)
        base = rng.uniform(-40000.0, 40000.0, size=4096)
        # Adversarial near-tie cases around half-integer raw boundaries.
        base[:1024] = (
            rng.integers(-(2**30), 2**30, size=1024)
            + 0.5
            + rng.choice([0.0, 2.0**-30, -(2.0**-30), 1e-12, -1e-12], size=1024)
        ) / 65536.0
        syn_raw = rng.integers(-(2**40), 2**40, size=4096)
        expected = np.asarray(Q15_16.from_float(base + syn_raw / 65536.0), dtype=np.int64)
        z = base * 65536.0 + syn_raw
        out = np.empty(z.shape, dtype=np.int64)
        _quantize_scaled_q15_16(z, out, np.empty_like(z))
        np.testing.assert_array_equal(out, expected)


class TestActiveSetShrinking:
    def _networks(self, seeds):
        def factory(rng, seed):
            return _representable_sparse(rng)

        return _make_networks(seeds, factory)

    def test_retain_preserves_survivor_trajectories(self):
        seeds = [81, 82, 83, 84, 85]
        reference = [net.run(60) for net in self._networks(seeds)]
        batch = BatchedNetwork.from_networks(self._networks(seeds))
        head = batch.run(30)
        keep = [0, 2, 4]
        batch.retain(keep)
        assert batch.batch_size == 3
        tail = batch.run(30, start_step=30)
        for row, b in enumerate(keep):
            full = reference[b].to_bool_matrix()
            np.testing.assert_array_equal(head[b].to_bool_matrix(), full[:30])
            np.testing.assert_array_equal(tail[row].to_bool_matrix(), full[30:])

    def test_retain_validates_indices(self):
        batch = BatchedNetwork.from_networks(self._networks([1, 2, 3]))
        with pytest.raises(BatchIncompatibleError):
            batch.retain([])
        with pytest.raises(IndexError):
            batch.retain([0, 3])
        with pytest.raises(ValueError):
            batch.retain([1, 0])
        batch.retain([0, 1, 2])  # no-op
        assert batch.batch_size == 3

    def test_retain_all_modes_state_consistency(self):
        # After a retain, membrane potentials must track the survivors.
        seeds = [5, 6, 7]
        batch = BatchedNetwork.from_networks(self._networks(seeds))
        batch.run(10)
        before = batch.membrane_potentials.copy()
        batch.retain([1, 2])
        after = batch.membrane_potentials
        np.testing.assert_array_equal(after, before[[1, 2]])


class TestBitPackedRecording:
    def test_run_rasters_match_manual_stepping(self):
        seeds = [21, 22]

        def factory(rng, seed):
            return _representable_sparse(rng)

        stepped = BatchedNetwork.from_networks(_make_networks(seeds, factory))
        manual = np.stack(
            [stepped.step(t).copy() for t in range(NUM_STEPS)]
        )  # (T, B, N)
        recorded = BatchedNetwork.from_networks(_make_networks(seeds, factory)).run(NUM_STEPS)
        for b, raster in enumerate(recorded):
            np.testing.assert_array_equal(raster.to_bool_matrix(), manual[:, b, :])

    def test_record_false_returns_empty_rasters(self):
        def factory(rng, seed):
            return _representable_sparse(rng)

        batch = BatchedNetwork.from_networks(_make_networks([1, 2], factory))
        rasters = batch.run(17, record=False)
        assert len(rasters) == 2
        assert all(r.num_steps == 17 and r.times.size == 0 for r in rasters)
