"""Crash tolerance, lease reassignment and cache resume of the sweep fabric.

The fault-injecting task functions only misbehave inside a fabric worker
(``os.getpid() != params["main_pid"]``) and only on their first attempt
(guarded by a marker file), so serial reference runs of the *same* spec
stay clean and every retry converges.
"""

import os
import pickle
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import SweepExecutor, SweepSpec, sweep_task_key


pytestmark = pytest.mark.slow


def _bits(results):
    # Per-item pickles: whole-list pickling is layout-sensitive (string
    # memoization differs between interned and cache-loaded dict keys)
    # even when every value is bit-identical.
    return [pickle.dumps(r) for r in results]


def _payload(task):
    rng = np.random.default_rng(task.seed)
    return {
        "index": task.index,
        "seed": task.seed,
        "value": float(rng.uniform()),
        "x": task.params.get("x"),
    }


def _echo_task(task):
    return _payload(task)


def _none_task(task):
    return None


def _kill_once_task(task):
    """SIGKILL the worker the first time it reaches the marked task."""
    if task.index == task.params["kill_index"] and os.getpid() != task.params["main_pid"]:
        marker = Path(task.params["marker_dir"]) / f"killed-{task.index}"
        if not marker.exists():
            marker.write_bytes(b"")
            os.kill(os.getpid(), signal.SIGKILL)
    return _payload(task)


def _stall_once_task(task):
    """Outlive the lease the first time a worker runs the marked task."""
    if task.index == task.params["stall_index"] and os.getpid() != task.params["main_pid"]:
        marker = Path(task.params["marker_dir"]) / f"stalled-{task.index}"
        if not marker.exists():
            marker.write_bytes(b"")
            time.sleep(task.params["stall_seconds"])
    return _payload(task)


def _failing_task(task):
    if task.index == task.params["fail_index"]:
        raise ValueError(f"boom at task {task.index}")
    return task.index


def _fault_params(count, tmp_path, **marks):
    base = {"main_pid": os.getpid(), "marker_dir": str(tmp_path), **marks}
    return [{**base, "x": i} for i in range(count)]


class TestCrashTolerance:
    def test_killed_worker_is_detected_and_sweep_completes(self, tmp_path):
        params = _fault_params(6, tmp_path, kill_index=2)
        spec = SweepSpec(
            fn=_kill_once_task,
            param_sets=params,
            base_seed=11,
            chunk_size=1,
            lease_timeout=30.0,  # generous: recovery must come from death detection
        )
        report = SweepExecutor(mode="process", max_workers=2).execute(spec)
        serial = SweepExecutor().execute(spec)
        assert report.results == serial.results
        assert report.worker_deaths >= 1
        assert report.lease_retries >= 1
        killed = report.records[2]
        assert killed.attempts >= 2

    def test_lease_reassignment_is_deterministic_under_fixed_seed(self, tmp_path):
        serial = None
        for attempt in range(2):
            marker_dir = tmp_path / f"run-{attempt}"
            marker_dir.mkdir()
            params = _fault_params(6, marker_dir, kill_index=4)
            spec = SweepSpec(
                fn=_kill_once_task,
                param_sets=params,
                base_seed=23,
                chunk_size=1,
                lease_timeout=30.0,
            )
            report = SweepExecutor(mode="process", max_workers=2).execute(spec)
            if serial is None:
                serial = SweepExecutor().execute(spec)
            # Results are pure functions of (fn, params, seed): however the
            # reassignment raced, every run is bit-identical to serial.
            assert _bits(report.results) == _bits(serial.results)

    def test_expired_lease_is_stolen_by_another_worker(self, tmp_path):
        params = _fault_params(6, tmp_path, stall_index=1, stall_seconds=3.0)
        spec = SweepSpec(
            fn=_stall_once_task,
            param_sets=params,
            base_seed=5,
            chunk_size=1,
            lease_timeout=0.5,
        )
        report = SweepExecutor(mode="process", max_workers=2).execute(spec)
        serial = SweepExecutor().execute(spec)
        assert report.results == serial.results
        assert report.lease_expiries >= 1
        assert report.records[1].attempts >= 2

    def test_task_exception_propagates_from_worker(self, tmp_path):
        params = _fault_params(4, tmp_path, fail_index=3)
        spec = SweepSpec(fn=_failing_task, param_sets=params, chunk_size=1)
        with pytest.raises(ValueError, match="boom at task 3"):
            SweepExecutor(mode="process", max_workers=2).execute(spec)
        with pytest.raises(ValueError, match="boom at task 3"):
            SweepExecutor().execute(spec)


class TestCacheResume:
    def test_partial_sweep_resumes_from_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        params = [{"x": i} for i in range(6)]
        first = SweepExecutor().execute(
            SweepSpec(fn=_echo_task, param_sets=params[:3], base_seed=7, cache=cache_dir)
        )
        assert first.cache_stores == 3 and first.cache_hits == 0
        resumed = SweepExecutor(mode="process", max_workers=2).execute(
            SweepSpec(fn=_echo_task, param_sets=params, base_seed=7, cache=cache_dir)
        )
        assert resumed.cache_hits == 3
        assert resumed.cache_stores == 3
        fresh = SweepExecutor().execute(
            SweepSpec(fn=_echo_task, param_sets=params, base_seed=7)
        )
        assert _bits(resumed.results) == _bits(fresh.results)

    def test_resume_after_worker_kill_is_bit_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        params = _fault_params(6, tmp_path, kill_index=3)
        spec = SweepSpec(
            fn=_kill_once_task,
            param_sets=params,
            base_seed=31,
            chunk_size=1,
            lease_timeout=30.0,
            cache=cache_dir,
        )
        crashed = SweepExecutor(mode="process", max_workers=2).execute(spec)
        assert crashed.worker_deaths >= 1
        rerun = SweepExecutor(mode="process", max_workers=2).execute(spec)
        assert rerun.cache_hits == len(params)
        assert rerun.worker_deaths == 0
        uninterrupted = SweepExecutor().execute(
            SweepSpec(fn=_kill_once_task, param_sets=params, base_seed=31)
        )
        for report in (crashed, rerun):
            assert _bits(report.results) == _bits(uninterrupted.results)

    def test_overlapping_sweeps_share_cache_entries(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = SweepExecutor().execute(
            SweepSpec(fn=_echo_task, seeds=[11, 22, 33], cache=cache_dir)
        )
        assert first.cache_stores == 3
        # Seeds 22 and 33 sit at different indices here; the key excludes
        # the index, so the overlap still dedupes.
        second = SweepExecutor().execute(
            SweepSpec(fn=_echo_task, seeds=[22, 33, 44], cache=cache_dir)
        )
        assert second.cache_hits == 2
        assert second.cache_stores == 1
        assert second.results[:2] == first.results[1:]

    def test_none_results_are_cached_not_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = SweepSpec(fn=_none_task, seeds=[1, 2], cache=cache_dir)
        assert SweepExecutor().execute(spec).cache_stores == 2
        rerun = SweepExecutor().execute(spec)
        assert rerun.cache_hits == 2
        assert rerun.results == [None, None]

    def test_unstable_callables_count_as_uncacheable(self, tmp_path):
        spec = SweepSpec(fn=lambda task: task.seed, seeds=[1, 2], cache=tmp_path / "c")
        report = SweepExecutor().execute(spec)
        assert report.cache_uncacheable == 2
        assert report.cache_stores == 0

    def test_task_key_excludes_index_and_covers_params(self):
        tasks = SweepSpec(fn=_echo_task, seeds=[9], extra={"x": 1}).tasks()
        other_index = tasks[0].__class__(index=5, seed=9, params={"x": 1})
        assert sweep_task_key(_echo_task, tasks[0]) == sweep_task_key(_echo_task, other_index)
        changed = tasks[0].__class__(index=0, seed=9, params={"x": 2})
        assert sweep_task_key(_echo_task, tasks[0]) != sweep_task_key(_echo_task, changed)
        assert sweep_task_key(lambda t: t, tasks[0]) is None


class TestReportAccounting:
    def test_worker_utilisation_and_bench_record(self):
        params = [{"x": i} for i in range(8)]
        report = SweepExecutor(mode="process", max_workers=2).execute(
            SweepSpec(fn=_echo_task, param_sets=params, base_seed=3, chunk_size=2)
        )
        util = report.worker_utilisation()
        assert all(0.0 <= v for v in util.values())
        record = report.bench_record()
        assert record["tasks"] == 8
        assert record["mode"] == "process"
        assert record["lease_retries"] == report.lease_retries
        import json

        json.dumps(record)  # must be JSON-able as-is

    def test_bench_view_consolidates_bench_files(self, tmp_path):
        import json

        (tmp_path / "BENCH_other.json").write_text(json.dumps({"ok": 1}))
        report = SweepExecutor().execute(SweepSpec(fn=_echo_task, seeds=[1]))
        view = report.bench_view(tmp_path)
        assert view["sweep"]["tasks"] == 1
        assert view["bench"]["BENCH_other.json"] == {"ok": 1}
