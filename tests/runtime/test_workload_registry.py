"""The typed workload registry: name -> config -> SweepReport."""

import dataclasses

import pytest

from repro.runtime import (
    PooledCSPSweepConfig,
    SweepExecutor,
    SweepReport,
    register_sweep_workload,
    run_sweep_workload,
    sweep_workload_config,
    sweep_workloads,
)
from repro.runtime.registry import _REGISTRY

pytestmark = pytest.mark.slow


class TestRegistryShape:
    def test_all_four_workloads_are_registered(self):
        assert sweep_workloads() == [
            "csp-portfolio",
            "pooled-csp",
            "pooled-sudoku",
            "serve-load",
        ]

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="pooled-csp"):
            run_sweep_workload("nope")

    def test_config_builder_rejects_unknown_keys(self):
        config = sweep_workload_config("pooled-csp", count=2)
        assert config == PooledCSPSweepConfig(count=2)
        with pytest.raises(TypeError):
            sweep_workload_config("pooled-csp", typo_key=1)

    def test_override_of_existing_config_uses_replace(self):
        base = PooledCSPSweepConfig(count=4)
        with pytest.raises(TypeError):
            run_sweep_workload("pooled-csp", base, typo_key=1)

    def test_wrong_config_type_rejected(self):
        with pytest.raises(TypeError, match="PooledSudokuSweepConfig"):
            run_sweep_workload("pooled-sudoku", PooledCSPSweepConfig())

    def test_duplicate_registration_rejected(self):
        entry = _REGISTRY["pooled-csp"]
        with pytest.raises(ValueError, match="already registered"):
            register_sweep_workload(
                entry.name, entry.config_type, entry.runner, entry.description
            )
        # replace=True is the explicit escape hatch
        register_sweep_workload(
            entry.name, entry.config_type, entry.runner, entry.description, replace=True
        )
        assert _REGISTRY["pooled-csp"] is not entry


class TestRegisteredWorkloads:
    def test_pooled_csp_returns_report_with_summary(self):
        report = run_sweep_workload(
            "pooled-csp", count=2, max_steps=60, scenario_params={"num_nodes": 6}
        )
        assert isinstance(report, SweepReport)
        assert report.mode == "serial"
        assert report.summary["num_instances"] == 2
        assert len(report.results) == 2
        assert len(report.records) == 2

    def test_pooled_csp_matches_direct_driver_call(self):
        from repro.runtime import pooled_csp_sweep

        kwargs = dict(count=2, max_steps=60, scenario_params={"num_nodes": 6})
        via_registry = run_sweep_workload("pooled-csp", **kwargs).summary
        direct = pooled_csp_sweep("coloring", **kwargs)
        assert via_registry == direct

    def test_pooled_csp_through_fabric_executor(self):
        serial = run_sweep_workload(
            "pooled-csp", count=3, max_steps=60, scenario_params={"num_nodes": 6}
        )
        fabric = run_sweep_workload(
            "pooled-csp",
            count=3,
            max_steps=60,
            scenario_params={"num_nodes": 6},
            executor=SweepExecutor(mode="process", max_workers=2),
        )
        assert fabric.mode == "process"
        assert fabric.summary == serial.summary

    def test_pooled_sudoku_smoke(self):
        report = run_sweep_workload("pooled-sudoku", count=1, max_steps=40)
        assert report.summary["num_puzzles"] == 1
        assert len(report.records) == 1

    def test_csp_portfolio_synthesized_report(self):
        report = run_sweep_workload(
            "csp-portfolio", count=2, max_steps=60, scenario_params={"num_nodes": 6}
        )
        assert report.mode == "batched"
        assert len(report.records) == len(report.results) == 2
        assert all(rec.worker == -1 for rec in report.records)
        assert report.summary["num_instances"] == 2

    def test_serve_load_synthesized_report(self):
        report = run_sweep_workload(
            "serve-load",
            num_clients=2,
            requests_per_client=2,
            unique_instances=2,
            max_steps=150,
            scenario_params={"num_nodes": 6},
        )
        assert report.mode == "serve"
        assert len(report.results) == len(report.records) == 4
        assert report.summary["num_requests"] == 4

    def test_configs_are_frozen_and_replaceable(self):
        config = PooledCSPSweepConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.count = 3
        assert dataclasses.replace(config, count=3).count == 3


class TestHarnessEntryPoint:
    def test_harness_sweep_workload_delegates_to_registry(self):
        from repro.harness import experiments

        report = experiments.sweep_workload(
            "pooled-csp", count=2, max_steps=60, scenario_params={"num_nodes": 6}
        )
        assert isinstance(report, SweepReport)
        assert report.summary["num_instances"] == 2
