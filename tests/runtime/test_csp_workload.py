"""The ``csp`` workload through the backend registry, sweeps and cache."""

import numpy as np
import pytest

from repro.runtime import (
    RunRequest,
    RunResultCache,
    get_backend,
    pooled_csp_sweep,
    pooled_sudoku_sweep,
    run_on_backend,
)
from repro.runtime.sweep import SweepExecutor


def _csp_request(**overrides):
    options = {
        "scenario": "australia",
        "params": {"num_colors": 3},
    }
    options.update(overrides.pop("options", {}))
    return RunRequest(workload="csp", num_steps=40, seed=3, options=options, **overrides)


class TestCSPBackendWorkload:
    def test_network_backends_build_csp_networks(self):
        for name in ("fixed", "float64"):
            network = get_backend(name).build_network(_csp_request())
            assert network.size == 21  # 7 regions x 3 colors

    def test_run_produces_raster_and_metrics(self):
        result = run_on_backend("fixed", _csp_request())
        assert result.workload == "csp"
        assert result.num_steps == 40
        assert result.raster is not None
        assert result.total_spikes > 0
        assert "mean_rate_hz" in result.metrics

    def test_scenario_selection_and_params(self):
        request = _csp_request(options={"scenario": "queens", "params": {"n": 5}})
        network = get_backend("fixed").build_network(request)
        assert network.size == 25

    def test_solver_seed_option_changes_noise_stream(self):
        base = run_on_backend("fixed", _csp_request())
        same = run_on_backend("fixed", _csp_request())
        other = run_on_backend(
            "fixed", _csp_request(options={"solver_seed": 99})
        )
        assert base.total_spikes == same.total_spikes
        assert other.total_spikes != base.total_spikes

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_backend("fixed").build_network(
                _csp_request(options={"scenario": "nope"})
            )

    def test_isa_backends_reject_csp(self):
        with pytest.raises(ValueError):
            run_on_backend("functional", _csp_request())

    def test_run_result_cache_serves_repeated_csp_runs(self, tmp_path):
        cache = RunResultCache(tmp_path)
        request = _csp_request()
        cold = run_on_backend("fixed", request, cache=cache)
        hot = run_on_backend("fixed", request, cache=cache)
        assert cache.misses == 1 and cache.hits == 1
        assert hot.total_spikes == cold.total_spikes
        np.testing.assert_array_equal(
            hot.raster.to_bool_matrix(), cold.raster.to_bool_matrix()
        )


class TestPooledCSPSweep:
    def test_sweep_shape_and_determinism(self):
        kwargs = dict(base_seed=0, max_steps=300, scenario_params={"n": 4})
        first = pooled_csp_sweep("latin", 2, **kwargs)
        second = pooled_csp_sweep("latin", 2, **kwargs)
        assert first["scenario"] == "latin"
        assert first["num_instances"] == 2
        assert len(first["results"]) == 2
        assert 0.0 <= first["solve_rate"] <= 1.0
        assert first == second
        assert [r["instance_seed"] for r in first["results"]] == [0, 1]
        assert all(r["num_neurons"] == 64 for r in first["results"])  # 16 cells x 4 symbols

    def test_process_pool_matches_serial(self):
        kwargs = dict(base_seed=0, max_steps=200, scenario_params={"n": 4})
        serial = pooled_csp_sweep("latin", 2, **kwargs)
        pooled = pooled_csp_sweep(
            "latin", 2, executor=SweepExecutor(mode="process", max_workers=2), **kwargs
        )
        assert serial == pooled

    def test_solver_seed_threads_through(self):
        kwargs = dict(base_seed=0, max_steps=150, scenario_params={"n": 4})
        a = pooled_csp_sweep("latin", 1, solver_seed=1, **kwargs)
        b = pooled_csp_sweep("latin", 1, solver_seed=2, **kwargs)
        assert (
            a["results"][0]["total_spikes"] != b["results"][0]["total_spikes"]
            or a["results"][0]["steps"] != b["results"][0]["steps"]
        )


class TestPooledSudokuSolverSeed:
    """Regression tests: pooled_sudoku_sweep can vary the solver seed."""

    def test_solver_seed_changes_results(self):
        kwargs = dict(base_seed=1000, target_clues=40, max_steps=60)
        default = pooled_sudoku_sweep(1, **kwargs)
        explicit = pooled_sudoku_sweep(1, solver_seed=7, **kwargs)
        different = pooled_sudoku_sweep(1, solver_seed=11, **kwargs)
        # The historical default (7) is preserved...
        assert default == explicit
        # ...and a different solver seed now actually reaches the solver.
        assert (
            different["results"][0]["total_spikes"]
            != default["results"][0]["total_spikes"]
        )
