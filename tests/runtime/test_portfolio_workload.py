"""Workload/harness layers of the restart portfolio + seed-mixing fixes."""

from repro.csp import PortfolioConfig
from repro.harness import csp_portfolio_solve_rate
from repro.runtime import csp_portfolio_sweep, derive_task_seed, pooled_sudoku_sweep


class TestCSPPortfolioSweep:
    def test_summary_shape_and_determinism(self):
        kwargs = dict(
            base_seed=0,
            max_steps=500,
            portfolio=PortfolioConfig(base_budget=60, seed=3),
            scenario_params={"num_vertices": 10, "num_colors": 3, "edge_probability": 0.8},
        )
        a = csp_portfolio_sweep("coloring", 4, **kwargs)
        b = csp_portfolio_sweep("coloring", 4, **kwargs)
        assert a["num_instances"] == 4
        assert 0.0 <= a["solve_rate"] <= 1.0
        assert a["total_attempts"] >= 4
        assert a["total_neuron_updates"] == sum(r.neuron_updates for r in a["results"])
        assert (a["solved"], a["total_attempts"], a["total_neuron_updates"]) == (
            b["solved"],
            b["total_attempts"],
            b["total_neuron_updates"],
        )


class TestCSPPortfolioSolveRate:
    def test_compares_against_fixed_seed_baseline(self):
        summary = csp_portfolio_solve_rate(
            scenario="coloring",
            count=6,
            max_steps=800,
            seed=100,
            portfolio=PortfolioConfig(base_budget=80, seed=0),
            scenario_params={"num_vertices": 12, "num_colors": 3, "edge_probability": 0.85},
        )
        assert summary["num_instances"] == 6
        assert "fixed_solve_rate" in summary and "fixed_neuron_updates" in summary
        assert len(summary["results"]) == len(summary["fixed_results"]) == 6
        # Shared first-attempt seeds: any instance the fixed engine solves
        # within the first attempt budget is solved identically.
        for fixed, port in zip(summary["fixed_results"], summary["results"]):
            if fixed.solved and fixed.steps <= 80:
                assert port.solved and port.steps == fixed.steps

    def test_compare_fixed_optional(self):
        summary = csp_portfolio_solve_rate(
            scenario="coloring",
            count=2,
            max_steps=200,
            seed=0,
            scenario_params={"num_vertices": 8, "num_colors": 3},
            compare_fixed=False,
        )
        assert "fixed_solve_rate" not in summary


class TestPooledSudokuSeedMixing:
    def test_mix_seeds_default_uses_seed_sequence(self):
        kwargs = dict(base_seed=1000, target_clues=40, max_steps=40)
        mixed = pooled_sudoku_sweep(2, **kwargs)
        got = [r["puzzle_seed"] for r in mixed["results"]]
        assert got == [derive_task_seed(1000, i) for i in range(2)]

    def test_legacy_linear_scheme_preserved_as_opt_out(self):
        kwargs = dict(base_seed=1000, target_clues=40, max_steps=40)
        legacy = pooled_sudoku_sweep(2, mix_seeds=False, **kwargs)
        assert [r["puzzle_seed"] for r in legacy["results"]] == [1000, 1001]

    def test_schemes_differ(self):
        kwargs = dict(base_seed=1000, target_clues=40, max_steps=40)
        mixed = pooled_sudoku_sweep(1, **kwargs)
        legacy = pooled_sudoku_sweep(1, mix_seeds=False, **kwargs)
        assert (
            mixed["results"][0]["puzzle_seed"] != legacy["results"][0]["puzzle_seed"]
        )
