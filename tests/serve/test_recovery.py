"""Crash recovery: journal replay, checkpoint restore, supervised respawn.

The serving tier's recovery contract (``docs/SERVING.md``): a service
rebuilt over the same checkpoint directory and admission journal after a
hard crash (``os._exit``, ``kill -9``) delivers results **bit-identical**
to an uninterrupted run — request seeds are content-derived, the engine
snapshot restores the full solver state (Q15.16 currents, RNG cursors,
window bookkeeping), and the write-ahead journal replays every
admitted-but-unfinished request.  Damage that atomic writes cannot
explain fails loudly with typed errors; damage a crash *can* explain
(a torn tail, a torn newest snapshot) degrades to the last good state.
"""

import asyncio
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.csp.scenarios import make_instance
from repro.runtime.checkpoint import FaultPlan
from repro.serve import (
    AdmissionJournal,
    JournalCorruptError,
    OpenLoopLoad,
    ServeSupervisor,
    SolveService,
    run_open_loop_sync,
)

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


# --------------------------------------------------------------------- #
# Admission journal
# --------------------------------------------------------------------- #
def _graph():
    return make_instance("coloring", seed=1, num_vertices=9, num_colors=3)[0]


def test_journal_roundtrip_preserves_order(tmp_path):
    journal = AdmissionJournal(tmp_path / "wal")
    graph = _graph()
    for i in range(3):
        journal.admit(key=f"k{i}", client="c", graph=graph, clamps=[], seed=i, max_steps=100)
    journal.done("k1")
    journal.close()

    records, torn = AdmissionJournal(tmp_path / "wal").replay()
    assert not torn
    assert [r["kind"] for r in records] == ["admit", "admit", "admit", "done"]
    assert [r["key"] for r in records] == ["k0", "k1", "k2", "k1"]
    assert records[2]["seed"] == 2 and records[2]["max_steps"] == 100


def test_missing_or_empty_journal_is_no_history(tmp_path):
    assert AdmissionJournal(tmp_path / "absent").replay() == ([], False)
    (tmp_path / "empty").write_bytes(b"")
    assert AdmissionJournal(tmp_path / "empty").replay() == ([], False)


def test_torn_tail_is_tolerated_and_repairable(tmp_path):
    fault = FaultPlan(truncate_journal_at=3)
    journal = AdmissionJournal(tmp_path / "wal", fault=fault)
    graph = _graph()
    for i in range(3):  # the third append is chopped mid-record
        journal.admit(key=f"k{i}", client="c", graph=graph, clamps=[], seed=i, max_steps=100)
    journal.close()

    replayer = AdmissionJournal(tmp_path / "wal")
    records, torn = replayer.replay(repair=True)
    assert torn and [r["key"] for r in records] == ["k0", "k1"]

    # After repair the tail is clean: appends land and replay is whole.
    replayer.admit(key="k3", client="c", graph=graph, clamps=[], seed=3, max_steps=100)
    replayer.close()
    records, torn = AdmissionJournal(tmp_path / "wal").replay()
    assert not torn and [r["key"] for r in records] == ["k0", "k1", "k3"]


def test_mid_file_corruption_fails_loudly(tmp_path):
    journal = AdmissionJournal(tmp_path / "wal")
    graph = _graph()
    for i in range(3):
        journal.admit(key=f"k{i}", client="c", graph=graph, clamps=[], seed=i, max_steps=100)
    journal.close()

    blob = bytearray((tmp_path / "wal").read_bytes())
    blob[len(blob) // 2] ^= 0xFF  # inside record 2, with record 3 beyond it
    (tmp_path / "wal").write_bytes(bytes(blob))
    with pytest.raises(JournalCorruptError, match="beyond"):
        AdmissionJournal(tmp_path / "wal").replay()


def test_bad_magic_fails_loudly(tmp_path):
    (tmp_path / "wal").write_bytes(b"definitely not a journal")
    with pytest.raises(JournalCorruptError, match="magic"):
        AdmissionJournal(tmp_path / "wal").replay()


# --------------------------------------------------------------------- #
# Service recovery differential: crash -> restore -> bit-identical
# --------------------------------------------------------------------- #
N_REQUESTS = 6
MAX_STEPS = 1500
SERVICE_KW = dict(capacity=2, check_interval=10, default_max_steps=MAX_STEPS, seed=11)


def _request_instances(count=N_REQUESTS):
    return [
        make_instance("coloring", seed=100 + i, num_vertices=9, num_colors=3)
        for i in range(count)
    ]


def _submit_all(service_kwargs, count=N_REQUESTS, max_steps=MAX_STEPS):
    """Submit the canonical request set to a fresh service; return results."""

    async def main():
        async with SolveService(clock="steps", **service_kwargs) as service:
            results = await asyncio.gather(
                *[
                    service.submit(*instance, client=f"c{i}", max_steps=max_steps)
                    for i, instance in enumerate(_request_instances(count))
                ]
            )
            await service.stop(drain=True)
            return list(results), service.metrics()

    return asyncio.run(main())


def _assert_serve_results_identical(actual, expected):
    assert len(actual) == len(expected)
    for got, ref in zip(actual, expected):
        assert got.seed == ref.seed and got.max_steps == ref.max_steps
        assert got.result.solved == ref.result.solved
        assert got.result.steps == ref.result.steps
        assert got.result.total_spikes == ref.result.total_spikes
        assert got.result.neuron_updates == ref.result.neuron_updates
        np.testing.assert_array_equal(got.result.values, ref.result.values)
        np.testing.assert_array_equal(got.result.decided, ref.result.decided)


def _run_crashing_service(tmp_path, *, crash_at_step=120):
    """A subprocess service that takes the request set and dies mid-solve."""
    ckpt_dir = tmp_path / "ckpts"
    journal = tmp_path / "journal.wal"
    script = tmp_path / "crashing_service.py"
    script.write_text(
        "import asyncio, sys\n"
        f"sys.path.insert(0, {_SRC!r})\n"
        "from repro.csp.scenarios import make_instance\n"
        "from repro.runtime.checkpoint import FaultPlan\n"
        "from repro.serve import SolveService\n"
        "\n"
        "async def main():\n"
        "    service = SolveService(\n"
        "        capacity=2, check_interval=10, default_max_steps=1500, seed=11,\n"
        f"        clock='steps', checkpoint_dir={str(ckpt_dir)!r}, checkpoint_every=40,\n"
        f"        journal_path={str(journal)!r},\n"
        f"        fault=FaultPlan(crash_at_step={crash_at_step}),\n"
        "    )\n"
        "    async with service:\n"
        "        instances = [make_instance('coloring', seed=100 + i,\n"
        "                                   num_vertices=9, num_colors=3)\n"
        f"                     for i in range({N_REQUESTS})]\n"
        "        await asyncio.gather(*[\n"
        "            service.submit(*instance, client=f'c{i}', max_steps=1500)\n"
        "            for i, instance in enumerate(instances)])\n"
        "\n"
        "asyncio.run(main())\n"
    )
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == FaultPlan.CRASH_EXIT_CODE, proc.stderr
    assert journal.exists()
    assert len(list(ckpt_dir.glob("*.ckpt"))) >= 1
    return ckpt_dir, journal


def test_crashed_service_recovers_bit_identically(tmp_path):
    ckpt_dir, journal = _run_crashing_service(tmp_path)

    recovered, metrics = _submit_all(
        dict(SERVICE_KW, checkpoint_dir=str(ckpt_dir), journal_path=str(journal))
    )
    reference, _ = _submit_all(SERVICE_KW)
    _assert_serve_results_identical(recovered, reference)

    assert metrics.restores == 1
    assert metrics.restored_rows >= 1  # rows were mid-solve at the crash
    assert metrics.restored_rows + metrics.replayed >= 1
    assert metrics.served == N_REQUESTS


def test_corrupt_newest_snapshot_falls_back_to_previous(tmp_path):
    """Snapshot rot degrades recovery to the older snapshot, loudly counted."""
    ckpt_dir, journal = _run_crashing_service(tmp_path)
    snapshots = sorted(ckpt_dir.glob("*.ckpt"))
    assert len(snapshots) >= 2  # rotation kept a fallback
    blob = bytearray(snapshots[-1].read_bytes())
    blob[-1] ^= 0xFF
    snapshots[-1].write_bytes(bytes(blob))

    recovered, metrics = _submit_all(
        dict(SERVICE_KW, checkpoint_dir=str(ckpt_dir), journal_path=str(journal))
    )
    reference, _ = _submit_all(SERVICE_KW)
    _assert_serve_results_identical(recovered, reference)
    assert metrics.restores == 1
    assert metrics.checkpoint_failures >= 1  # the corrupt snapshot is counted


def test_recovery_without_history_is_a_cold_start(tmp_path):
    results, metrics = _submit_all(
        dict(
            SERVICE_KW,
            checkpoint_dir=str(tmp_path / "ckpts"),
            journal_path=str(tmp_path / "journal.wal"),
        )
    )
    reference, _ = _submit_all(SERVICE_KW)
    _assert_serve_results_identical(results, reference)
    assert metrics.restores == 0 and metrics.replayed == 0
    assert metrics.checkpoints >= 1  # it checkpointed while serving


# --------------------------------------------------------------------- #
# Supervised serving: kill -9 the child, lose no request
# --------------------------------------------------------------------- #
@pytest.mark.chaos
def test_supervisor_kill9_delivers_bit_identical_results(tmp_path):
    count, max_steps = 10, 2500
    service_kwargs = dict(
        SERVICE_KW,
        default_max_steps=max_steps,
        clock="steps",
        checkpoint_dir=str(tmp_path / "ckpts"),
        checkpoint_every=40,
        journal_path=str(tmp_path / "journal.wal"),
    )
    instances = _request_instances(count)
    results = {}

    with ServeSupervisor(service_kwargs=service_kwargs, max_restarts=5) as supervisor:

        def worker(index, instance):
            results[index] = supervisor.submit(
                *instance, client=f"c{index}", max_steps=max_steps, timeout=240.0
            )

        threads = [
            threading.Thread(target=worker, args=(i, instance), daemon=True)
            for i, instance in enumerate(instances)
        ]
        for thread in threads:
            thread.start()

        # Kill only once the child has durable state to recover from.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and not list((tmp_path / "ckpts").glob("*.ckpt")):
            time.sleep(0.02)
        assert list((tmp_path / "ckpts").glob("*.ckpt")), "child never checkpointed"
        supervisor.kill()

        for thread in threads:
            thread.join(timeout=240.0)
        assert not any(thread.is_alive() for thread in threads)
        restarts = supervisor.restarts

    assert restarts >= 1  # the crash really happened and was survived
    assert sorted(results) == list(range(count))

    reference, _ = _submit_all(
        dict(SERVICE_KW, default_max_steps=max_steps), count=count, max_steps=max_steps
    )
    _assert_serve_results_identical([results[i] for i in range(count)], reference)


# --------------------------------------------------------------------- #
# Client-side resilience: loadgen retry with jittered backoff
# --------------------------------------------------------------------- #
def test_loadgen_retries_recover_shed_requests():
    base = dict(
        num_clients=6,
        requests_per_client=4,
        mean_interarrival_steps=5.0,
        scenario="coloring",
        scenario_params={"num_vertices": 9, "num_colors": 3},
        unique_instances=24,
        seed=7,
        max_steps=1200,
    )
    service = dict(
        capacity=2, queue_limit=1, check_interval=10, seed=7, clock="steps",
        default_max_steps=1200,
    )

    rows_plain, _, stats_plain = run_open_loop_sync(OpenLoopLoad(**base), **service)
    assert stats_plain["retries"] == 0 and stats_plain["recovered_by_retry"] == 0
    assert stats_plain["shed"] == sum(1 for _, _, r in rows_plain if r is None) > 0

    spec = OpenLoopLoad(
        **base,
        retry_budget=4,
        retry_base_steps=16.0,
        retry_cap_steps=256.0,
        retry_deadline_steps=2000.0,
    )
    rows, metrics, stats = run_open_loop_sync(spec, **service)
    rows2, metrics2, stats2 = run_open_loop_sync(spec, **service)

    # Deterministic: seeded jitter makes retried runs exactly repeatable.
    assert stats == stats2 and metrics.as_dict() == metrics2.as_dict()
    for (c1, p1, r1), (c2, p2, r2) in zip(rows, rows2):
        assert (c1, p1) == (c2, p2) and (r1 is None) == (r2 is None)
        if r1 is not None:
            assert r1.result.steps == r2.result.steps

    assert stats["retries"] > 0
    assert stats["recovered_by_retry"] > 0
    assert stats["shed"] == sum(1 for _, _, r in rows if r is None)
    assert stats["shed"] < stats_plain["shed"]  # retries reduced ultimate sheds
