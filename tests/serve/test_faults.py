"""Fault injection against the solve service.

Each test breaks one thing — a client, a deadline, the admission queue,
a cache entry — and checks two properties: the failure is reported
through its typed channel, and the rest of the service is untouched
(surviving rows stay bit-exact, the metrics ledger stays conserved).
"""

import asyncio
import pickle

import numpy as np
import pytest

from repro.csp.config import CSPConfig
from repro.csp.scenarios import make_instance
from repro.csp.solver import CSPSolveResult, SpikingCSPSolver
from repro.runtime.cache import RunResultCache
from repro.serve import (
    LoadShedError,
    ServeStatus,
    ServiceClosedError,
    SolveService,
)

CHECK_INTERVAL = 10


def _instance(seed, num_vertices=9):
    return make_instance("coloring", seed=seed, num_vertices=num_vertices, num_colors=3)


def _assert_ledger(metrics):
    assert metrics.served + metrics.cancelled + metrics.shed + metrics.in_flight == (
        metrics.submitted
    )


def test_cancellation_frees_slot_without_perturbing_survivors():
    """Cancelling one client mid-solve drops its row via ``retain``; the
    surviving row's trajectory — noise stream, step count, spikes — is
    bit-identical to a standalone run."""

    async def main():
        victim = _instance(901)
        survivor = _instance(6)
        service = SolveService(capacity=2, check_interval=CHECK_INTERVAL, seed=1, clock="steps")
        async with service:
            victim_task = asyncio.ensure_future(
                service.submit(*victim, client="victim", max_steps=100_000)
            )
            survivor_task = asyncio.ensure_future(
                service.submit(*survivor, client="survivor", max_steps=800)
            )
            await service.wait_for_step(service.step + 12)
            assert not victim_task.done()
            victim_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await victim_task
            served = await survivor_task
            # The victim's slot really is released, not just orphaned.
            await service.wait_for_step(service.step + CHECK_INTERVAL + 1)
            assert service.metrics().running == 0
            await service.stop(drain=True)
        return survivor, served, service.metrics()

    (graph, clamps), served, metrics = asyncio.run(main())
    offline = SpikingCSPSolver(graph, CSPConfig(), seed=served.seed).solve(
        clamps, max_steps=800, check_interval=CHECK_INTERVAL
    )
    assert offline.solved == served.result.solved
    assert offline.steps == served.result.steps
    assert offline.total_spikes == served.result.total_spikes
    np.testing.assert_array_equal(offline.values, served.result.values)
    assert metrics.cancelled == 1
    _assert_ledger(metrics)


def test_deadline_expiry_returns_typed_timeout():
    async def main():
        service = SolveService(capacity=1, check_interval=CHECK_INTERVAL, seed=1, clock="steps")
        async with service:
            hard = _instance(901)
            blocker = asyncio.ensure_future(
                service.submit(*hard, client="blocker", max_steps=100_000)
            )
            # Queued behind the blocker with a deadline it cannot make
            # ("steps" clock: step_seconds=1e-3, so 0.005 = 5 steps).
            expired = await service.submit(
                *_instance(7), client="late", deadline=0.005, max_steps=800
            )
            blocker.cancel()
            with pytest.raises(asyncio.CancelledError):
                await blocker
            await service.stop(drain=True)
        return expired, service.metrics()

    expired, metrics = asyncio.run(main())
    assert expired.status is ServeStatus.TIMEOUT
    assert not expired.solved
    assert expired.result is None
    assert metrics.timeouts == 1
    _assert_ledger(metrics)


def test_running_deadline_expires_at_checkpoint():
    # A near-threshold instance (the hard-pool parameters from
    # benchmarks/bench_csp_solver.py) needs hundreds of steps, so it
    # cannot finish before the ~35-step deadline regardless of the
    # code-fingerprint-derived solve seed (request keys fold in
    # repro.runtime.cache.code_fingerprint, so *any* source change
    # reshuffles trajectories — an easy instance here makes the test
    # flake across unrelated commits).
    hard = make_instance(
        "coloring", seed=901, num_vertices=40, num_colors=4, edge_probability=0.45
    )

    async def main():
        service = SolveService(capacity=1, check_interval=CHECK_INTERVAL, seed=1, clock="steps")
        async with service:
            result = await service.submit(
                *hard, client="slow", max_steps=100_000, deadline=0.035
            )
            await service.stop(drain=True)
        return result, service.metrics()

    result, metrics = asyncio.run(main())
    assert result.status is ServeStatus.TIMEOUT
    # Expired at the first decode checkpoint on or after the deadline,
    # and the dead row was retired from the batch.
    assert 30 <= result.steps_in_service <= 40
    assert metrics.running == 0
    _assert_ledger(metrics)


def test_admission_beyond_capacity_sheds_with_typed_error():
    async def main():
        service = SolveService(
            capacity=1, queue_limit=1, check_interval=CHECK_INTERVAL, seed=1, clock="steps"
        )
        async with service:
            blocker = asyncio.ensure_future(
                service.submit(*_instance(901), client="a", max_steps=100_000)
            )
            await service.wait_for_step(1)
            queued = asyncio.ensure_future(
                service.submit(*_instance(902), client="b", max_steps=100_000)
            )
            await asyncio.sleep(0)
            with pytest.raises(LoadShedError) as excinfo:
                await service.submit(*_instance(903), client="c", max_steps=800)
            for task in (blocker, queued):
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
            await service.stop(drain=True)
        return excinfo.value, service.metrics()

    error, metrics = asyncio.run(main())
    assert error.client == "c"
    assert error.queue_limit == 1
    assert error.queue_depth == 1
    assert metrics.shed == 1
    _assert_ledger(metrics)


def test_corrupted_cache_entry_is_a_miss(tmp_path):
    """A truncated pickle behind a service cache key must be re-solved,
    not surfaced as an exception or a wrong answer."""

    def serve_once(cache):
        async def main():
            async with SolveService(
                capacity=1,
                check_interval=CHECK_INTERVAL,
                seed=2,
                clock="steps",
                cache=cache,
                memoize=False,
            ) as service:
                return await service.submit(*_instance(11), max_steps=800)

        return asyncio.run(main())

    cache = RunResultCache(tmp_path)
    first = serve_once(cache)
    path = cache._path(first.key)
    assert path.exists()

    # Truncate mid-pickle: unpicklable garbage.
    path.write_bytes(path.read_bytes()[:7])
    resolved = serve_once(RunResultCache(tmp_path))
    assert not resolved.from_cache  # miss: re-solved from scratch
    assert resolved.result.steps == first.result.steps
    assert not path.exists() or path.read_bytes() != b""  # garbage unlinked

    # Entry of the wrong type: equally a miss (``expect`` guard).
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"not": "a result"}))
    resolved = serve_once(RunResultCache(tmp_path))
    assert not resolved.from_cache
    assert resolved.result.steps == first.result.steps

    # Intact entry: a hit, bit-identical payload.
    hit = serve_once(RunResultCache(tmp_path))
    assert hit.from_cache
    assert isinstance(hit.result, CSPSolveResult)
    assert hit.result.steps == first.result.steps
    np.testing.assert_array_equal(hit.result.values, first.result.values)


def test_cache_get_expect_guard_direct(tmp_path):
    cache = RunResultCache(tmp_path)
    key = "ab" + "0" * 62
    cache.put(key, {"foreign": True})
    assert cache.get(key, expect=CSPSolveResult) is None
    assert not cache._path(key).exists()  # wrong-type entry evicted
    cache.put(key, {"foreign": True})
    assert cache.get(key) == {"foreign": True}  # untyped reads still work


def test_closed_service_rejects_submissions():
    async def main():
        service = SolveService(capacity=1, clock="steps")
        async with service:
            await service.submit(*_instance(3), max_steps=0)
        with pytest.raises(ServiceClosedError):
            await service.submit(*_instance(3), max_steps=800)

    asyncio.run(main())


def test_abort_stop_resolves_outstanding_as_cancelled():
    async def main():
        service = SolveService(capacity=1, check_interval=CHECK_INTERVAL, clock="steps")
        running = None
        async with service:
            running = asyncio.ensure_future(service.submit(*_instance(901), max_steps=100_000))
            await service.wait_for_step(5)
            await service.stop(drain=False)
            result = await running
        return result, service.metrics()

    result, metrics = asyncio.run(main())
    assert result.status is ServeStatus.CANCELLED
    assert result.result is None
    assert metrics.running == 0
    _assert_ledger(metrics)
