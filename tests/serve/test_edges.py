"""Edge-case guards around batch recomposition and service admission."""

import asyncio

import numpy as np
import pytest

from repro.csp.config import CSPConfig
from repro.csp.scenarios import make_instance
from repro.csp.solver import SpikingCSPSolver, _empty_result
from repro.runtime.batch import BatchedNetwork, BatchIncompatibleError
from repro.serve import IncompatibleInstanceError, ServeStatus, SolveService


def _instance(seed, num_vertices=9):
    return make_instance("coloring", seed=seed, num_vertices=num_vertices, num_colors=3)


def _networks(count, *, base_seed=0):
    config = CSPConfig()
    nets = []
    for i in range(count):
        graph, clamps = _instance(30 + i)
        solver = SpikingCSPSolver(graph, config, seed=base_seed + i)
        nets.append(solver.build_network(clamps))
    return nets


def _batch(count):
    return BatchedNetwork.from_networks(_networks(count), synapse_mode="exact")


def test_extend_with_zero_new_rows_is_a_noop():
    reference = _batch(3)
    extended = _batch(3)
    extended.extend([])
    assert extended.batch_size == 3
    for step in range(1, 31):
        np.testing.assert_array_equal(reference.step(step), extended.step(step))


def test_retain_empty_selection_raises_and_leaves_batch_usable():
    batch = _batch(2)
    reference = _batch(2)
    for step in range(1, 11):
        batch.step(step)
        reference.step(step)
    with pytest.raises(BatchIncompatibleError, match="empty"):
        batch.retain([])
    # The refused retain must not have corrupted any state.
    for step in range(11, 21):
        np.testing.assert_array_equal(reference.step(step), batch.step(step))


def test_retain_full_selection_is_a_noop():
    batch = _batch(3)
    reference = _batch(3)
    for step in range(1, 11):
        batch.step(step)
        reference.step(step)
    batch.retain([0, 1, 2])
    assert batch.batch_size == 3
    for step in range(11, 21):
        np.testing.assert_array_equal(reference.step(step), batch.step(step))


def test_submit_many_empty_returns_empty():
    async def main():
        async with SolveService(capacity=2, clock="steps") as service:
            results = await service.submit_many([])
            metrics = service.metrics()
        return results, metrics

    results, metrics = asyncio.run(main())
    assert results == []
    assert metrics.submitted == 0
    assert metrics.total_steps == 0  # nothing ever entered the batch


def test_zero_step_budget_served_immediately():
    """``max_steps <= 0`` mirrors the batch engines' guard: the zero-step
    decode (clamps only), served without touching the batch."""
    graph, clamps = _instance(4)

    async def main():
        async with SolveService(capacity=2, clock="steps") as service:
            zero = await service.submit(graph, clamps, max_steps=0)
            negative = await service.submit(graph, clamps, max_steps=-5)
            metrics = service.metrics()
        return zero, negative, metrics

    zero, negative, metrics = asyncio.run(main())
    offline = _empty_result(graph, graph.resolve_clamps(clamps))
    for served in (zero, negative):
        assert served.status is ServeStatus.UNSOLVED
        assert served.result.steps == offline.steps == 0
        np.testing.assert_array_equal(served.result.values, offline.values)
        np.testing.assert_array_equal(served.result.decided, offline.decided)
    assert metrics.total_steps == 0
    assert metrics.served == 2
    assert metrics.in_flight == 0


def test_mismatched_neuron_count_is_a_typed_rejection():
    async def main():
        async with SolveService(capacity=2, clock="steps") as service:
            small = _instance(5, num_vertices=6)
            large = _instance(5, num_vertices=12)
            await service.submit(*small, max_steps=600)
            with pytest.raises(IncompatibleInstanceError):
                await service.submit(*large, max_steps=600)
            metrics = service.metrics()
        return metrics

    metrics = asyncio.run(main())
    # The rejected instance never entered the ledger.
    assert metrics.submitted == 1
    assert metrics.served == 1


def test_inconsistent_clamps_rejected_at_submit():
    graph, _ = _instance(6)
    # Clamp both endpoints of an explicit conflict edge to the values
    # the edge forbids (adjacent vertices, same colour).
    pre, post = next((a, b) for a, targets in enumerate(graph._explicit) for b in targets)
    clamps = {}
    for neuron in (pre, post):
        vi = int(graph._neuron_var[neuron])
        variable = graph.variables[vi]
        clamps[variable.name] = int(variable.domain[neuron - int(graph.offsets[vi])])

    async def main():
        async with SolveService(capacity=2, clock="steps") as service:
            with pytest.raises(ValueError, match="clamps"):
                await service.submit(graph, clamps, max_steps=600)

    asyncio.run(main())
