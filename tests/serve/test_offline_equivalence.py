"""Differential suite: served results are bit-identical to offline solves.

The serving contract (``docs/SERVING.md``) is that admission into the
always-hot continuous batch is invisible in the numbers: whatever the
arrival order, client interleaving or batch capacity, every request's
result equals the standalone ``SpikingCSPSolver.solve`` run — and the
offline ``solve_instances`` batch run — with the same seed and budget.
"""

import asyncio

import numpy as np
import pytest

from repro.csp.config import CSPConfig
from repro.csp.scenarios import make_instance
from repro.csp.solver import SpikingCSPSolver, solve_instances
from repro.serve import OpenLoopLoad, SolveService, run_open_loop

MAX_STEPS = 800
CHECK_INTERVAL = 10


def _pool(count, base_seed, num_vertices=9):
    return [
        make_instance("coloring", seed=base_seed + i, num_vertices=num_vertices, num_colors=3)
        for i in range(count)
    ]


def _assert_result_equal(offline, served):
    assert offline.solved == served.solved
    assert offline.steps == served.steps
    assert offline.total_spikes == served.total_spikes
    assert offline.neuron_updates == served.neuron_updates
    np.testing.assert_array_equal(offline.values, served.values)
    np.testing.assert_array_equal(offline.decided, served.decided)


def _serve_pool(pool, *, capacity, seed=3, interleave=None, max_steps=MAX_STEPS):
    """Serve every instance; returns the ServeResults in pool order."""

    async def main():
        service = SolveService(
            capacity=capacity,
            check_interval=CHECK_INTERVAL,
            default_max_steps=max_steps,
            seed=seed,
            clock="steps",
        )
        async with service:
            if interleave is None:
                results = await service.submit_many(pool)
            else:
                # Stagger submissions across scheduler steps so requests
                # join a batch that is already mid-flight.
                async def delayed(index, graph, clamps):
                    await service.wait_for_step(interleave * index)
                    return await service.submit(graph, clamps, client=f"c{index % 3}")

                results = list(
                    await asyncio.gather(
                        *(delayed(i, g, c) for i, (g, c) in enumerate(pool))
                    )
                )
            await service.stop(drain=True)
        return results

    return asyncio.run(main())


@pytest.mark.parametrize("capacity", [1, 3, 8])
def test_served_results_match_standalone_solver(capacity):
    pool = _pool(8, base_seed=40)
    results = _serve_pool(pool, capacity=capacity)
    config = CSPConfig()
    for (graph, clamps), served in zip(pool, results):
        offline = SpikingCSPSolver(graph, config, seed=served.seed).solve(
            clamps, max_steps=MAX_STEPS, check_interval=CHECK_INTERVAL
        )
        _assert_result_equal(offline, served.result)


def test_served_results_match_offline_solve_instances():
    pool = _pool(6, base_seed=70)
    results = _serve_pool(pool, capacity=4)
    offline = solve_instances(
        pool,
        seeds=[served.seed for served in results],
        max_steps=MAX_STEPS,
        check_interval=CHECK_INTERVAL,
    )
    for off, served in zip(offline, results):
        _assert_result_equal(off, served.result)


def test_interleaved_admission_matches_standalone():
    """Requests admitted mid-run (slot refills) stay bit-exact."""
    pool = _pool(7, base_seed=90)
    results = _serve_pool(pool, capacity=2, interleave=17)
    config = CSPConfig()
    for (graph, clamps), served in zip(pool, results):
        offline = SpikingCSPSolver(graph, config, seed=served.seed).solve(
            clamps, max_steps=MAX_STEPS, check_interval=CHECK_INTERVAL
        )
        _assert_result_equal(offline, served.result)


def test_arrival_order_does_not_change_results():
    """Content-derived seeds: a request's answer is independent of when
    it arrives, what shares the batch with it, and the batch capacity."""
    pool = _pool(6, base_seed=120)
    rng = np.random.default_rng(5)
    order = list(rng.permutation(len(pool)))
    forward = _serve_pool(pool, capacity=3)
    shuffled = _serve_pool([pool[i] for i in order], capacity=5, interleave=9)
    for position, index in enumerate(order):
        a, b = forward[index], shuffled[position]
        assert a.seed == b.seed
        assert a.key == b.key
        _assert_result_equal(a.result, b.result)


def test_explicit_seed_matches_standalone():
    graph, clamps = make_instance("coloring", seed=7, num_vertices=9, num_colors=3)

    async def main():
        async with SolveService(
            capacity=2, check_interval=CHECK_INTERVAL, seed=0, clock="steps"
        ) as service:
            return await service.submit(graph, clamps, seed=1234, max_steps=MAX_STEPS)

    served = asyncio.run(main())
    assert served.seed == 1234
    offline = SpikingCSPSolver(graph, CSPConfig(), seed=1234).solve(
        clamps, max_steps=MAX_STEPS, check_interval=CHECK_INTERVAL
    )
    _assert_result_equal(offline, served.result)


def test_open_loop_load_matches_standalone_and_repeats_deterministically():
    spec = OpenLoopLoad(
        num_clients=3,
        requests_per_client=4,
        mean_interarrival_steps=25.0,
        scenario="coloring",
        scenario_params={"num_vertices": 9, "num_colors": 3},
        unique_instances=5,
        seed=21,
        max_steps=MAX_STEPS,
    )

    def run_once():
        async def main():
            service = SolveService(
                capacity=4,
                check_interval=CHECK_INTERVAL,
                default_max_steps=MAX_STEPS,
                seed=21,
                clock="steps",
            )
            async with service:
                rows = await run_open_loop(service, spec)
                await service.stop(drain=True)
            return rows

        return asyncio.run(main())

    first, second = run_once(), run_once()
    config = CSPConfig()
    from repro.serve import build_instance_pool

    pool = build_instance_pool(spec)
    offline_by_pick = {}
    for (_, pick, served), (_, _, repeat) in zip(first, second):
        assert served is not None and repeat is not None
        assert served.seed == repeat.seed
        _assert_result_equal(served.result, repeat.result)
        if pick not in offline_by_pick:
            graph, clamps = pool[pick]
            offline_by_pick[pick] = SpikingCSPSolver(graph, config, seed=served.seed).solve(
                clamps, max_steps=MAX_STEPS, check_interval=CHECK_INTERVAL
            )
        _assert_result_equal(offline_by_pick[pick], served.result)
