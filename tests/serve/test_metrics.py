"""Metrics accounting: conservation laws and deterministic percentiles."""

import asyncio

import pytest

from repro.serve import (
    LoadShedError,
    MetricsRecorder,
    OpenLoopLoad,
    SolveService,
    nearest_rank_percentile,
    run_open_loop,
    run_open_loop_sync,
)


# --------------------------------------------------------------------- #
# nearest-rank percentile
# --------------------------------------------------------------------- #
def test_percentile_empty_sample_is_zero():
    assert nearest_rank_percentile([], 0.5) == 0.0


def test_percentile_is_always_a_sample_point():
    values = [3.0, 1.0, 4.0, 1.0, 5.0]
    for fraction in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
        assert nearest_rank_percentile(values, fraction) in values


def test_percentile_nearest_rank_definition():
    values = [10, 20, 30, 40]
    assert nearest_rank_percentile(values, 0.0) == 10
    assert nearest_rank_percentile(values, 0.25) == 10
    assert nearest_rank_percentile(values, 0.5) == 20  # exact multiple: rank 2
    assert nearest_rank_percentile(values, 0.51) == 30
    assert nearest_rank_percentile(values, 1.0) == 40


def test_percentile_rejects_out_of_range_fractions():
    with pytest.raises(ValueError):
        nearest_rank_percentile([1.0], 1.5)
    with pytest.raises(ValueError):
        nearest_rank_percentile([1.0], -0.1)


def test_recorder_rejects_unknown_status():
    with pytest.raises(ValueError):
        MetricsRecorder().record_served("exploded", 0.0, 0)


# --------------------------------------------------------------------- #
# ledger conservation under a concurrent workload
# --------------------------------------------------------------------- #
SPEC = OpenLoopLoad(
    num_clients=4,
    requests_per_client=5,
    mean_interarrival_steps=15.0,
    scenario="coloring",
    scenario_params={"num_vertices": 9, "num_colors": 3},
    unique_instances=6,
    seed=33,
    max_steps=800,
)


def test_ledger_conservation_with_shed_and_cancellations():
    """``served + shed + cancelled + in_flight == submitted`` holds with
    every admission outcome present in the mix."""

    async def main():
        service = SolveService(
            capacity=2,
            queue_limit=2,
            check_interval=10,
            default_max_steps=800,
            seed=33,
            clock="steps",
        )
        shed = 0
        async with service:
            load = asyncio.ensure_future(run_open_loop(service, SPEC))
            # A client that gives up mid-solve.
            from repro.csp.scenarios import make_instance

            hard = make_instance("coloring", seed=901, num_vertices=9, num_colors=3)
            quitter = asyncio.ensure_future(
                service.submit(*hard, client="quitter", max_steps=100_000)
            )
            await service.wait_for_step(40)
            quitter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await quitter
            rows = await load
            shed = sum(1 for _, _, result in rows if result is None)
            await service.stop(drain=True)
        return shed, service.metrics()

    shed_rows, metrics = asyncio.run(main())
    assert metrics.served + metrics.shed + metrics.cancelled + metrics.in_flight == (
        metrics.submitted
    )
    assert metrics.served == metrics.solved + metrics.unsolved + metrics.timeouts
    assert metrics.admitted == metrics.submitted - metrics.shed
    assert metrics.cancelled == 1
    assert metrics.shed == shed_rows
    assert metrics.in_flight == 0  # drained
    assert metrics.queue_depth == 0 and metrics.running == 0
    assert 0.0 < metrics.occupancy <= 1.0


def test_load_shed_error_counts_in_ledger():
    async def main():
        async with SolveService(
            capacity=1, queue_limit=1, check_interval=10, seed=1, clock="steps"
        ) as service:
            from repro.csp.scenarios import make_instance

            hard = make_instance("coloring", seed=901, num_vertices=9, num_colors=3)
            blocker = asyncio.ensure_future(service.submit(*hard, client="a", max_steps=100_000))
            await service.wait_for_step(1)
            queued = asyncio.ensure_future(
                service.submit(*hard, client="b", seed=1, max_steps=100_000)
            )
            await asyncio.sleep(0)
            with pytest.raises(LoadShedError):
                await service.submit(*hard, client="c", seed=2, max_steps=100_000)
            snapshot = service.metrics()
            for task in (blocker, queued):
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
        return snapshot

    snapshot = asyncio.run(main())
    assert snapshot.submitted == 3
    assert snapshot.shed == 1
    assert snapshot.in_flight == 2  # blocker running + queued
    assert snapshot.served == 0


# --------------------------------------------------------------------- #
# deterministic latency percentiles (fake clock)
# --------------------------------------------------------------------- #
def test_latency_percentiles_deterministic_across_runs():
    def run():
        _, metrics, _ = run_open_loop_sync(
            SPEC,
            capacity=3,
            check_interval=10,
            default_max_steps=800,
            seed=33,
            clock="steps",
            step_seconds=1e-3,
        )
        return metrics

    first, second = run(), run()
    assert first.latency_steps_p50 == second.latency_steps_p50
    assert first.latency_steps_p99 == second.latency_steps_p99
    assert first.latency_p50 == second.latency_p50
    assert first.latency_p99 == second.latency_p99
    assert first.elapsed == second.elapsed
    assert first.total_steps == second.total_steps
    # With the step clock, clock latencies are step latencies scaled.
    assert first.latency_p99 == pytest.approx(first.latency_steps_p99 * 1e-3)
    assert first.latency_steps_p50 <= first.latency_steps_p99
    assert first.latency_steps_p99 > 0


def test_cache_hits_and_coalescing_reported():
    async def main():
        from repro.csp.scenarios import make_instance

        instance = make_instance("coloring", seed=12, num_vertices=9, num_colors=3)
        async with SolveService(
            capacity=2, check_interval=10, seed=5, clock="steps"
        ) as service:
            first = await service.submit(*instance, max_steps=800)
            repeat = await service.submit(*instance, max_steps=800)
            both = await asyncio.gather(
                service.submit(*instance, seed=77, max_steps=100_000, client="x"),
                service.submit(*instance, seed=77, max_steps=100_000, client="y"),
            )
            snapshot = service.metrics()
        return first, repeat, both, snapshot

    first, repeat, (a, b), snapshot = asyncio.run(main())
    assert not first.from_cache and repeat.from_cache
    assert repeat.result.steps == first.result.steps
    # Identical concurrent requests shared one batch row.
    assert a.coalesced != b.coalesced  # exactly one joined the other
    assert a.result.steps == b.result.steps
    assert snapshot.cache_hits == 1
    assert snapshot.coalesced == 1
    assert snapshot.served == 4
